//! Persistence properties: save→load→matvec bit-identity in both memory
//! modes, robustness of the loader against truncated/corrupted bytes, and
//! the on-the-fly vs normal file-size split.

use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
use h2_kernels::Coulomb;
use h2_points::gen;
use h2_serve::{codec, LoadError};
use proptest::prelude::*;
use std::sync::Arc;

fn build(n: usize, dim: usize, seed: u64, tol: f64, mode: MemoryMode) -> H2Matrix {
    let pts = gen::uniform_cube(n, dim, seed);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(tol, dim),
        mode,
        leaf_size: 48,
        eta: 0.7,
        ..H2Config::default()
    };
    H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
}

fn probe(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + seed as f64) * 0.417).sin())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The loaded operator applies bit-identically to the in-memory one, in
    /// both memory modes, across sizes/dimensions/datasets.
    #[test]
    fn save_load_matvec_is_bit_identical((n, dim, seed) in (150usize..400, 1usize..4, 0u64..1000)) {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(n, dim, seed, 1e-4, mode);
            let loaded = codec::decode::<f64>(&codec::encode(&h2), Arc::new(Coulomb))
                .expect("round trip must decode");
            let b = probe(n, seed);
            prop_assert_eq!(h2.matvec(&b), loaded.matvec(&b));
            prop_assert_eq!(loaded.mode(), mode);
        }
    }

    /// Any single flipped byte is detected: the loader returns `Err` (and
    /// in particular never panics) — magic, version, tags, lengths and
    /// payloads are all covered by structure checks or section checksums.
    #[test]
    fn corrupted_files_return_err((pos_seed, bit) in (0u64..10_000, 0u8..8)) {
        let h2 = build(220, 2, 3, 1e-4, MemoryMode::OnTheFly);
        let mut bytes = codec::encode(&h2);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(codec::decode::<f64>(&bytes, Arc::new(Coulomb)).is_err(),
            "flip at byte {} must be detected", pos);
    }
}

/// Every truncation point yields a typed error, never a panic.
#[test]
fn truncated_files_return_err() {
    let h2 = build(260, 3, 5, 1e-4, MemoryMode::Normal);
    let bytes = codec::encode(&h2);
    let step = (bytes.len() / 101).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        let err = codec::decode::<f64>(&bytes[..cut], Arc::new(Coulomb));
        assert!(err.is_err(), "decoding a {cut}-byte prefix must fail");
    }
    // The untruncated file still loads.
    assert!(codec::decode::<f64>(&bytes, Arc::new(Coulomb)).is_ok());
}

/// Acceptance criterion: at n = 5000 the on-the-fly file (tree + skeleton
/// generators only) is at least 5x smaller than the normal-mode file
/// (which adds the dense coupling/nearfield blocks) for the same operator.
#[test]
fn otf_file_at_least_5x_smaller_at_n5000() {
    let normal = build(5000, 3, 7, 1e-5, MemoryMode::Normal);
    let otf = build(5000, 3, 7, 1e-5, MemoryMode::OnTheFly);
    let normal_bytes = codec::encode(&normal);
    let otf_bytes = codec::encode(&otf);
    let ratio = normal_bytes.len() as f64 / otf_bytes.len() as f64;
    assert!(
        ratio >= 5.0,
        "normal {} KiB / otf {} KiB = {ratio:.2}x, expected >= 5x",
        normal_bytes.len() / 1024,
        otf_bytes.len() / 1024
    );
    // Both files round-trip to bit-identical operators.
    let b = probe(5000, 7);
    let n2 = codec::decode::<f64>(&normal_bytes, Arc::new(Coulomb)).unwrap();
    let o2 = codec::decode::<f64>(&otf_bytes, Arc::new(Coulomb)).unwrap();
    assert_eq!(normal.matvec(&b), n2.matvec(&b));
    assert_eq!(otf.matvec(&b), o2.matvec(&b));
}

/// A file saved in one mode and reopened must report that mode and the
/// loader must reject cross-mode inconsistencies injected at the parts
/// level (defense in depth for hand-edited files).
#[test]
fn mode_is_preserved_and_validated() {
    let otf = build(300, 3, 9, 1e-4, MemoryMode::OnTheFly);
    let loaded = codec::decode::<f64>(&codec::encode(&otf), Arc::new(Coulomb)).unwrap();
    assert_eq!(loaded.mode(), MemoryMode::OnTheFly);
    assert!(!loaded.lists().nearfield_pairs.is_empty());

    // Flipping the mode byte inside the fingerprint breaks its checksum.
    let bytes = codec::encode(&otf);
    let mut tampered = bytes.clone();
    // Fingerprint payload starts right after magic(8) + version(4) + tag(1) + len(8).
    tampered[21] ^= 1;
    match codec::decode::<f64>(&tampered, Arc::new(Coulomb)) {
        Err(LoadError::CorruptSection { section, .. }) => assert_eq!(section, "fingerprint"),
        other => panic!("expected corrupt fingerprint, got {:?}", other.map(|_| ())),
    }
}
