//! Persistence properties: save→load→matvec bit-identity in both memory
//! modes, robustness of the loader against truncated/corrupted bytes, and
//! the on-the-fly vs normal file-size split.

use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
use h2_kernels::Coulomb;
use h2_points::gen;
use h2_serve::{codec, LoadError};
use proptest::prelude::*;
use std::sync::Arc;

fn build(n: usize, dim: usize, seed: u64, tol: f64, mode: MemoryMode) -> H2Matrix {
    let pts = gen::uniform_cube(n, dim, seed);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(tol, dim),
        mode,
        leaf_size: 48,
        eta: 0.7,
        ..H2Config::default()
    };
    H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
}

fn probe(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + seed as f64) * 0.417).sin())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The loaded operator applies bit-identically to the in-memory one, in
    /// both memory modes, across sizes/dimensions/datasets.
    #[test]
    fn save_load_matvec_is_bit_identical((n, dim, seed) in (150usize..400, 1usize..4, 0u64..1000)) {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(n, dim, seed, 1e-4, mode);
            let loaded = codec::decode::<f64>(&codec::encode(&h2), Arc::new(Coulomb))
                .expect("round trip must decode");
            let b = probe(n, seed);
            prop_assert_eq!(h2.matvec(&b), loaded.matvec(&b));
            prop_assert_eq!(loaded.mode(), mode);
        }
    }

    /// Any single flipped byte is detected: the loader returns `Err` (and
    /// in particular never panics) — magic, version, tags, lengths and
    /// payloads are all covered by structure checks or section checksums.
    #[test]
    fn corrupted_files_return_err((pos_seed, bit) in (0u64..10_000, 0u8..8)) {
        let h2 = build(220, 2, 3, 1e-4, MemoryMode::OnTheFly);
        let mut bytes = codec::encode(&h2);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(codec::decode::<f64>(&bytes, Arc::new(Coulomb)).is_err(),
            "flip at byte {} must be detected", pos);
    }

    /// Cross-version property: a v3 (legacy) encoding and a v4 (canonical)
    /// encoding of the same operator decode to bitwise-identical operators,
    /// and re-encoding the v3-decoded operator reproduces the v4 bytes —
    /// migration through this build is deterministic and lossless.
    #[test]
    fn v3_v4_cross_version_round_trip((n, seed) in (150usize..320, 0u64..1000)) {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(n, 2, seed, 1e-4, mode);
            let v3 = codec::encode_v3(&h2);
            let v4 = codec::encode(&h2);
            prop_assert_eq!(codec::stored_version(&v3).unwrap(), 3);
            prop_assert_eq!(codec::stored_version(&v4).unwrap(), 4);
            let from3 = codec::decode::<f64>(&v3, Arc::new(Coulomb)).expect("v3 decodes");
            let from4 = codec::decode::<f64>(&v4, Arc::new(Coulomb)).expect("v4 decodes");
            let b = probe(n, seed);
            let want = h2.matvec(&b);
            prop_assert_eq!(&from3.matvec(&b), &want);
            prop_assert_eq!(&from4.matvec(&b), &want);
            // Peeks agree across versions.
            prop_assert_eq!(codec::stored_scalar(&v3).unwrap(),
                codec::stored_scalar(&v4).unwrap());
            prop_assert_eq!(codec::stored_epoch(&v3).unwrap(),
                codec::stored_epoch(&v4).unwrap());
            // Deterministic migration: v3 → decode → encode == direct v4.
            prop_assert_eq!(codec::encode(&from3), v4);
        }
    }

    /// The header peeks (`stored_scalar`/`stored_builder`/`stored_epoch`/
    /// `stored_version`) never panic on hostile bytes: any single bit flip
    /// anywhere in the file yields either a typed error or a well-formed
    /// answer — both versions, all peeks.
    #[test]
    fn peeks_survive_bit_flips((pos_seed, bit, legacy) in (0u64..10_000, 0u8..8, 0u8..2)) {
        let h2 = build(180, 2, 11, 1e-4, MemoryMode::OnTheFly);
        let mut bytes = if legacy == 1 { codec::encode_v3(&h2) } else { codec::encode(&h2) };
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Typed errors are fine; panics are the bug this test hunts.
        let _ = codec::stored_scalar(&bytes);
        let _ = codec::stored_builder(&bytes);
        let _ = codec::stored_epoch(&bytes);
        let _ = codec::stored_version(&bytes);
    }
}

/// The header peeks return typed errors (never panic) on truncated and
/// zero-length inputs, at every truncation point of both format versions.
#[test]
fn peeks_return_typed_errors_on_truncated_and_empty_input() {
    for bytes in [vec![], vec![0x48]] {
        assert!(matches!(
            codec::stored_scalar(&bytes),
            Err(LoadError::BadMagic) | Err(LoadError::CorruptSection { .. })
        ));
        assert!(codec::stored_builder(&bytes).is_err());
        assert!(codec::stored_epoch(&bytes).is_err());
        assert!(codec::stored_version(&bytes).is_err());
    }
    let h2 = build(200, 2, 13, 1e-4, MemoryMode::OnTheFly);
    for bytes in [codec::encode_v3(&h2), codec::encode(&h2)] {
        let step = (bytes.len() / 97).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let prefix = &bytes[..cut];
            // Each peek must return (not panic). A v4 prefix that only cuts
            // the slab region legitimately still answers header peeks (they
            // never touch the slab); everything else is a typed LoadError
            // with a printable message. A successful answer must be sane.
            match codec::stored_scalar(prefix) {
                Ok(s) => assert!(s == "f64" || s == "f32"),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            match codec::stored_epoch(prefix) {
                Ok(e) => assert_eq!(e, 0),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            let _ = codec::stored_builder(prefix);
            let _ = codec::stored_version(prefix);
            // The full decode, by contrast, must reject every proper prefix.
            assert!(
                codec::decode::<f64>(prefix, Arc::new(Coulomb)).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
        // The full file answers every peek.
        assert_eq!(codec::stored_scalar(&bytes).unwrap(), "f64");
        assert_eq!(codec::stored_epoch(&bytes).unwrap(), 0);
        assert!(codec::stored_builder(&bytes).is_ok());
    }
}

/// Every truncation point yields a typed error, never a panic.
#[test]
fn truncated_files_return_err() {
    let h2 = build(260, 3, 5, 1e-4, MemoryMode::Normal);
    let bytes = codec::encode(&h2);
    let step = (bytes.len() / 101).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        let err = codec::decode::<f64>(&bytes[..cut], Arc::new(Coulomb));
        assert!(err.is_err(), "decoding a {cut}-byte prefix must fail");
    }
    // The untruncated file still loads.
    assert!(codec::decode::<f64>(&bytes, Arc::new(Coulomb)).is_ok());
}

/// Acceptance criterion: at n = 5000 the on-the-fly file (tree + skeleton
/// generators only) is at least 5x smaller than the normal-mode file
/// (which adds the dense coupling/nearfield blocks) for the same operator.
#[test]
fn otf_file_at_least_5x_smaller_at_n5000() {
    let normal = build(5000, 3, 7, 1e-5, MemoryMode::Normal);
    let otf = build(5000, 3, 7, 1e-5, MemoryMode::OnTheFly);
    let normal_bytes = codec::encode(&normal);
    let otf_bytes = codec::encode(&otf);
    let ratio = normal_bytes.len() as f64 / otf_bytes.len() as f64;
    assert!(
        ratio >= 5.0,
        "normal {} KiB / otf {} KiB = {ratio:.2}x, expected >= 5x",
        normal_bytes.len() / 1024,
        otf_bytes.len() / 1024
    );
    // Both files round-trip to bit-identical operators.
    let b = probe(5000, 7);
    let n2 = codec::decode::<f64>(&normal_bytes, Arc::new(Coulomb)).unwrap();
    let o2 = codec::decode::<f64>(&otf_bytes, Arc::new(Coulomb)).unwrap();
    assert_eq!(normal.matvec(&b), n2.matvec(&b));
    assert_eq!(otf.matvec(&b), o2.matvec(&b));
}

/// A file saved in one mode and reopened must report that mode and the
/// loader must reject cross-mode inconsistencies injected at the parts
/// level (defense in depth for hand-edited files).
#[test]
fn mode_is_preserved_and_validated() {
    let otf = build(300, 3, 9, 1e-4, MemoryMode::OnTheFly);
    let loaded = codec::decode::<f64>(&codec::encode(&otf), Arc::new(Coulomb)).unwrap();
    assert_eq!(loaded.mode(), MemoryMode::OnTheFly);
    assert!(!loaded.lists().nearfield_pairs.is_empty());

    // Flipping the mode byte inside the fingerprint breaks its checksum.
    let bytes = codec::encode(&otf);
    let mut tampered = bytes.clone();
    // Fingerprint payload starts right after magic(8) + version(4) + tag(1) + len(8).
    tampered[21] ^= 1;
    match codec::decode::<f64>(&tampered, Arc::new(Coulomb)) {
        Err(LoadError::CorruptSection { section, .. }) => assert_eq!(section, "fingerprint"),
        other => panic!("expected corrupt fingerprint, got {:?}", other.map(|_| ())),
    }
}
