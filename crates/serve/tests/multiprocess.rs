//! Multi-process integration tests: real `h2serve shard-worker` child
//! processes serving the distributed five-sweep matvec over TCP against an
//! in-test coordinator.
//!
//! These tests spawn OS processes and open loopback sockets, so they are
//! `#[ignore]`d from the default `cargo test` run; `check.sh` runs them
//! explicitly under a hard timeout:
//!
//! ```text
//! cargo test -p h2-serve --test multiprocess -- --ignored --test-threads=1
//! ```
//!
//! Covered: bit-identity of the TCP deployment against both the serial
//! apply and the in-process channel mesh (shards {2, 4}, both memory
//! modes), and fault injection — a worker killed mid-service surfaces as a
//! typed error within the configured timeout and shutdown still completes.

use h2_core::{BasisMethod, H2Config, H2Matrix, H2Operator, MemoryMode};
use h2_dist::ShardedH2;
use h2_kernels::Coulomb;
use h2_net::{BoundCoordinator, NetConfig, NetError, ShardCoordinator};
use h2_points::gen;
use h2_serve::codec;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build(n: usize, mode: MemoryMode) -> Arc<H2Matrix> {
    let pts = gen::uniform_cube(n, 3, 17);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-6, 3),
        mode,
        leaf_size: 32,
        eta: 0.7,
        ..H2Config::default()
    };
    Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
}

fn rhs(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i + 11 * seed) as f64 * 0.43).sin())
        .collect()
}

/// Persists `h2` to a unique temp file the worker processes load from.
fn save_operator(h2: &H2Matrix, tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("h2-multiprocess-{}-{tag}.h2op", std::process::id()));
    codec::save(h2, &path).expect("save operator");
    path
}

/// Spawns `shards` real `h2serve shard-worker` processes against a bound
/// coordinator and admits them.
fn deploy(
    h2: Arc<H2Matrix>,
    file: &PathBuf,
    shards: usize,
    cfg: NetConfig,
    io_timeout_ms: Option<u64>,
) -> Result<ShardCoordinator<f64>, NetError> {
    BoundCoordinator::bind(h2, shards, cfg)?.spawn(|rank, addr| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_h2serve"));
        cmd.args(["shard-worker", "--connect", addr])
            .arg("--file")
            .arg(file)
            .args(["--rank", &rank.to_string()])
            .args(["--shards", &shards.to_string()])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(ms) = io_timeout_ms {
            cmd.args(["--io-timeout-ms", &ms.to_string()]);
        }
        cmd.spawn().map_err(|e| NetError::Spawn {
            detail: format!("rank {rank}: {e}"),
        })
    })
}

#[test]
#[ignore = "spawns worker processes; run via check.sh"]
fn worker_processes_match_serial_and_channel_mesh_bitwise() {
    for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
        let h2 = build(700, mode);
        let file = save_operator(&h2, &format!("consistency-{}", mode.name()));
        for shards in [2usize, 4] {
            let coord =
                deploy(h2.clone(), &file, shards, NetConfig::default(), None).expect("deployment");
            let mesh = ShardedH2::new(h2.clone(), shards).expect("channel mesh");
            for s in 0..2 {
                let b = rhs(h2.n(), s);
                let over_tcp = coord.try_matvec(&b).expect("distributed matvec");
                assert_eq!(
                    over_tcp,
                    h2.matvec(&b),
                    "vs serial: {mode:?} x{shards} #{s}"
                );
                assert_eq!(
                    over_tcp,
                    mesh.matvec::<f64>(&b),
                    "vs channel mesh: {mode:?} x{shards} #{s}"
                );
            }
            coord.shutdown().expect("clean drain");
        }
        std::fs::remove_file(&file).ok();
    }
}

#[test]
#[ignore = "spawns worker processes; run via check.sh"]
fn killed_worker_is_a_typed_error_within_the_deadline_and_shutdown_completes() {
    let io_timeout = Duration::from_secs(2);
    let h2 = build(500, MemoryMode::OnTheFly);
    let file = save_operator(&h2, "fault");
    let coord = deploy(
        h2.clone(),
        &file,
        2,
        NetConfig::fast_failure(io_timeout),
        Some(io_timeout.as_millis() as u64),
    )
    .expect("deployment");

    // Healthy first: the deployment serves before the fault.
    let b = rhs(h2.n(), 0);
    assert_eq!(coord.try_matvec(&b).expect("healthy matvec"), h2.matvec(&b));

    // Kill rank 0 and sweep again: a typed transport error within the
    // configured timeout (plus scheduling slack), never a hang.
    coord.kill_worker(0).expect("kill rank 0");
    let t0 = Instant::now();
    let err = coord
        .try_matvec(&b)
        .expect_err("sweep against a dead worker");
    assert!(
        matches!(err, NetError::Transport(_)),
        "expected a transport error, got {err:?}"
    );
    assert!(
        t0.elapsed() < io_timeout + Duration::from_secs(6),
        "error took {:?}",
        t0.elapsed()
    );

    // The coordinator is poisoned: later calls fail fast with the same
    // error instead of feeding a half-swept mesh.
    let t1 = Instant::now();
    assert_eq!(coord.try_matvec(&b).expect_err("poisoned"), err);
    assert!(t1.elapsed() < Duration::from_millis(100));

    // Shutdown still completes within the timeout budget. The surviving
    // worker lost its peer mid-sweep and exits with a typed error (a
    // non-zero status shutdown reports), so either outcome is bounded —
    // what matters is that nothing hangs.
    let t2 = Instant::now();
    let _ = coord.shutdown();
    assert!(
        t2.elapsed() < 2 * io_timeout + Duration::from_secs(6),
        "shutdown took {:?}",
        t2.elapsed()
    );
    std::fs::remove_file(&file).ok();
}
