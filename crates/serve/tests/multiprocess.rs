//! Multi-process integration tests: real `h2serve shard-worker` child
//! processes serving the distributed five-sweep matvec over TCP against an
//! in-test coordinator.
//!
//! These tests spawn OS processes and open loopback sockets, so they are
//! `#[ignore]`d from the default `cargo test` run; `check.sh` runs them
//! explicitly under a hard timeout:
//!
//! ```text
//! cargo test -p h2-serve --test multiprocess -- --ignored --test-threads=1
//! ```
//!
//! Covered: bit-identity of the TCP deployment against both the serial
//! apply and the in-process channel mesh (shards {2, 4}, both memory
//! modes); fault injection — a worker killed mid-service surfaces as a
//! typed error within the configured timeout, the error references the
//! flight-recorder dumps, and shutdown still completes; and distributed
//! tracing — coordinator and worker spans merge into one offset-corrected
//! cluster trace whose worker roundtrips nest under the per-batch spans.

use h2_core::{BasisMethod, H2Config, H2Matrix, H2Operator, MemoryMode};
use h2_dist::ShardedH2;
use h2_kernels::Coulomb;
use h2_net::{BoundCoordinator, NetConfig, NetError, ShardCoordinator};
use h2_points::gen;
use h2_serve::codec;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build(n: usize, mode: MemoryMode) -> Arc<H2Matrix> {
    let pts = gen::uniform_cube(n, 3, 17);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-6, 3),
        mode,
        leaf_size: 32,
        eta: 0.7,
        ..H2Config::default()
    };
    Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
}

fn rhs(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i + 11 * seed) as f64 * 0.43).sin())
        .collect()
}

/// Persists `h2` to a unique temp file the worker processes load from.
fn save_operator(h2: &H2Matrix, tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("h2-multiprocess-{}-{tag}.h2op", std::process::id()));
    codec::save(h2, &path).expect("save operator");
    path
}

/// Spawns `shards` real `h2serve shard-worker` processes against a bound
/// coordinator and admits them.
fn deploy(
    h2: Arc<H2Matrix>,
    file: &PathBuf,
    shards: usize,
    cfg: NetConfig,
    io_timeout_ms: Option<u64>,
) -> Result<ShardCoordinator<f64>, NetError> {
    // The coordinator arms its recorder from `cfg`; workers are separate
    // processes, so the same directory rides along as a CLI flag.
    let flight_dir = cfg.flight_dir.clone();
    BoundCoordinator::bind(h2, shards, cfg)?.spawn(|rank, addr| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_h2serve"));
        cmd.args(["shard-worker", "--connect", addr])
            .arg("--file")
            .arg(file)
            .args(["--rank", &rank.to_string()])
            .args(["--shards", &shards.to_string()])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(ms) = io_timeout_ms {
            cmd.args(["--io-timeout-ms", &ms.to_string()]);
        }
        if let Some(dir) = &flight_dir {
            cmd.arg("--flight-dir").arg(dir);
        }
        cmd.spawn().map_err(|e| NetError::Spawn {
            detail: format!("rank {rank}: {e}"),
        })
    })
}

#[test]
#[ignore = "spawns worker processes; run via check.sh"]
fn worker_processes_match_serial_and_channel_mesh_bitwise() {
    for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
        let h2 = build(700, mode);
        let file = save_operator(&h2, &format!("consistency-{}", mode.name()));
        for shards in [2usize, 4] {
            let coord =
                deploy(h2.clone(), &file, shards, NetConfig::default(), None).expect("deployment");
            let mesh = ShardedH2::new(h2.clone(), shards).expect("channel mesh");
            for s in 0..2 {
                let b = rhs(h2.n(), s);
                let over_tcp = coord.try_matvec(&b).expect("distributed matvec");
                assert_eq!(
                    over_tcp,
                    h2.matvec(&b),
                    "vs serial: {mode:?} x{shards} #{s}"
                );
                assert_eq!(
                    over_tcp,
                    mesh.matvec::<f64>(&b),
                    "vs channel mesh: {mode:?} x{shards} #{s}"
                );
            }
            coord.shutdown().expect("clean drain");
        }
        std::fs::remove_file(&file).ok();
    }
}

#[test]
#[ignore = "spawns worker processes; run via check.sh"]
fn killed_worker_is_a_typed_error_within_the_deadline_and_shutdown_completes() {
    let io_timeout = Duration::from_secs(2);
    let h2 = build(500, MemoryMode::OnTheFly);
    let file = save_operator(&h2, "fault");
    let flight = std::env::temp_dir().join(format!("h2-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&flight).expect("flight dir");
    let mut cfg = NetConfig::fast_failure(io_timeout);
    cfg.flight_dir = Some(flight.clone());
    let coord = deploy(
        h2.clone(),
        &file,
        2,
        cfg,
        Some(io_timeout.as_millis() as u64),
    )
    .expect("deployment");

    // Healthy first: the deployment serves before the fault.
    let b = rhs(h2.n(), 0);
    assert_eq!(coord.try_matvec(&b).expect("healthy matvec"), h2.matvec(&b));

    // Kill rank 0 and sweep again: a typed transport error within the
    // configured timeout (plus scheduling slack), never a hang.
    coord.kill_worker(0).expect("kill rank 0");
    let t0 = Instant::now();
    let err = coord
        .try_matvec(&b)
        .expect_err("sweep against a dead worker");
    assert!(
        matches!(err, NetError::Transport(_)),
        "expected a transport error, got {err:?}"
    );
    assert!(
        t0.elapsed() < io_timeout + Duration::from_secs(6),
        "error took {:?}",
        t0.elapsed()
    );

    // The flight recorder leaves a postmortem trail: the typed error points
    // at the dump directory, the killed worker's last per-sweep dump is on
    // disk (a SIGKILL runs no hooks — the per-sweep dump is the design),
    // and the coordinator dumped its own ring when it poisoned itself.
    let msg = err.to_string();
    assert!(
        msg.contains("flight recorder:"),
        "error does not reference the flight recorder: {msg}"
    );
    let rank0_dump = flight.join("h2-flight-rank0.json");
    assert!(
        rank0_dump.exists(),
        "killed worker left no dump at {}",
        rank0_dump.display()
    );
    let coord_dump = flight.join("h2-flight-coordinator.json");
    assert!(
        coord_dump.exists(),
        "poisoned coordinator left no dump at {}",
        coord_dump.display()
    );
    let dump = std::fs::read_to_string(&rank0_dump).expect("readable dump");
    assert!(
        dump.contains("\"entries\""),
        "dump is not the recorder format: {}",
        &dump[..dump.len().min(200)]
    );

    // The coordinator is poisoned: later calls fail fast with the same
    // error instead of feeding a half-swept mesh.
    let t1 = Instant::now();
    assert_eq!(coord.try_matvec(&b).expect_err("poisoned"), err);
    assert!(t1.elapsed() < Duration::from_millis(100));

    // Shutdown still completes within the timeout budget. The surviving
    // worker lost its peer mid-sweep and exits with a typed error (a
    // non-zero status shutdown reports), so either outcome is bounded —
    // what matters is that nothing hangs.
    let t2 = Instant::now();
    let _ = coord.shutdown();
    assert!(
        t2.elapsed() < 2 * io_timeout + Duration::from_secs(6),
        "shutdown took {:?}",
        t2.elapsed()
    );
    std::fs::remove_file(&file).ok();
    std::fs::remove_dir_all(&flight).ok();
}

#[test]
#[ignore = "spawns worker processes; run via check.sh"]
fn cluster_trace_merges_all_ranks_with_offset_corrected_nesting() {
    let h2 = build(600, MemoryMode::OnTheFly);
    let file = save_operator(&h2, "trace");
    let cfg = NetConfig {
        trace: true,
        ..NetConfig::default()
    };
    let coord = deploy(h2.clone(), &file, 2, cfg, None).expect("deployment");
    for s in 0..3 {
        let b = rhs(h2.n(), s);
        assert_eq!(
            coord.try_matvec(&b).expect("traced matvec"),
            h2.matvec(&b),
            "tracing must not perturb the result"
        );
    }

    let procs = coord.cluster_spans();
    assert_eq!(procs.len(), 3, "two workers + the coordinator");
    let coordp = procs
        .iter()
        .find(|p| p.name == "coordinator")
        .expect("coordinator process row");
    assert_eq!(coordp.pid, 2, "coordinator pid is `shards` by convention");
    // One traced roundtrip per sweep on the coordinator, all with distinct
    // nonzero trace ids. (The registry is process-global, so other tests'
    // untraced spans may coexist — filter on the trace id.)
    let coord_rts: Vec<_> = coordp
        .spans
        .iter()
        .filter(|s| s.name == "net.roundtrip" && s.trace != 0)
        .collect();
    assert_eq!(coord_rts.len(), 3, "one traced batch span per sweep");
    let mut ids: Vec<u64> = coord_rts.iter().map(|s| s.trace).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "trace ids are distinct per batch");

    // Allow the handshake offset estimate this much error on loopback.
    const SLOP_NS: i128 = 5_000_000;
    for p in procs.iter().filter(|p| p.pid < 2) {
        let rts: Vec<_> = p
            .spans
            .iter()
            .filter(|s| s.name == "net.roundtrip" && s.trace != 0)
            .collect();
        assert_eq!(rts.len(), 3, "rank {} ships one span set per sweep", p.pid);
        let label = format!("rank={}", p.pid);
        for w in &rts {
            assert_eq!(w.label.as_deref(), Some(label.as_str()));
            let c = coord_rts
                .iter()
                .find(|c| c.trace == w.trace)
                .expect("worker trace id matches a coordinator batch");
            // Offset-corrected containment: the worker's service window sits
            // inside the coordinator's roundtrip for the same trace id.
            let ws = w.start_ns as i128 + p.offset_ns as i128;
            let we = ws + w.dur_ns as i128;
            let cs = c.start_ns as i128 + coordp.offset_ns as i128;
            let ce = cs + c.dur_ns as i128;
            assert!(
                ws >= cs - SLOP_NS && we <= ce + SLOP_NS,
                "rank {} span [{ws}, {we}] outside coordinator [{cs}, {ce}] for trace {}",
                p.pid,
                w.trace
            );
        }
        // The workers' five-sweep phases ride along under the same traces.
        assert!(
            p.spans
                .iter()
                .any(|s| s.name == "dist.shard" && s.trace != 0),
            "rank {} shipped no phase spans",
            p.pid
        );
    }

    // The merged export is the chrome://tracing shape Perfetto loads: one
    // process_name metadata row per pid plus complete events.
    let json = coord.cluster_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["), "not a trace object");
    for pid in 0..3u32 {
        assert!(
            json.contains(&format!("\"ph\":\"M\",\"pid\":{pid}")),
            "missing process row for pid {pid}"
        );
    }
    assert!(json.contains("\"ph\":\"X\""), "no complete events");

    coord.shutdown().expect("clean drain");
    std::fs::remove_file(&file).ok();
}
