//! Batched matvec service: queues single-vector requests and drains them in
//! fused multi-RHS sweeps.
//!
//! The point is amortization (the paper's §VI-B trade-off made operational):
//! in on-the-fly mode every coupling/nearfield block is regenerated per
//! apply, so `k` queued requests served by one fused `matmat` cost one block
//! generation instead of `k`. The fused panel sweep in `h2-core` is
//! bit-identical to per-request `matvec`s, so batching never changes
//! results — only cost.
//!
//! The service is generic over the request scalar `S` (default `f64`):
//! `MatvecService<H2MatrixS<f32>, f32>` serves single-precision vectors
//! natively, and wrapping the operator in [`h2_core::MixedH2`] serves `f64`
//! requests over `f32` storage with `f64` accumulation.
//!
//! ## Multi-tenant QoS
//!
//! Requests are queued per tenant through an `h2-tenant`
//! [`BatchScheduler`]: [`MatvecService::with_tenants`] takes a
//! [`TenantTable`] and a [`QueueMode`], [`MatvecService::submit_for`]
//! routes a request to a named tenant (enforcing its admission state and
//! queue cap with typed [`SubmitError::AdmissionRejected`] rejections), and
//! drains pick requests by weighted deficit round robin so one flooding
//! tenant cannot set everyone else's tail latency. [`MatvecService::new`]
//! remains the single-tenant FIFO service (one implicit `default` tenant),
//! so non-tenant-aware callers see exactly the legacy behavior. Per-tenant
//! latency/queue-wait histograms are exported as `h2_tenant_*` Prometheus
//! series by [`MatvecService::tenant_prometheus_text`].

use crate::error::SubmitError;
use crate::hist::LogLinearHistogram;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::registry::escape_label;
use h2_core::{H2Matrix, H2Operator};
use h2_linalg::{MatrixS, Scalar};
use h2_tenant::{AdmitError, BatchScheduler, QueueMode, TenantTable};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Pending<S: Scalar> {
    rhs: Vec<S>,
    tx: mpsc::Sender<Result<Vec<S>, SubmitError>>,
    enqueued: Instant,
}

/// Handle to one submitted request; resolves when a drain serves it.
///
/// Resolution is a `Result`: a sweep that fails in the backend (e.g. a
/// distributed shard lost mid-matvec) resolves every ticket it covered
/// with [`SubmitError::Backend`] instead of hanging or panicking.
#[derive(Debug)]
pub struct Ticket<S: Scalar = f64> {
    rx: mpsc::Receiver<Result<Vec<S>, SubmitError>>,
}

impl<S: Scalar> Ticket<S> {
    /// Blocks until the request is served (or fails). Dropping the service
    /// with the request still queued resolves as [`SubmitError::Backend`],
    /// never a hang.
    pub fn wait(self) -> Result<Vec<S>, SubmitError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(SubmitError::Backend {
                detail: "service dropped before serving the request".into(),
            })
        })
    }

    /// Returns the outcome if it is already available.
    pub fn try_take(&self) -> Option<Result<Vec<S>, SubmitError>> {
        self.rx.try_recv().ok()
    }
}

/// Summary of one [`MatvecService::drain`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Fused sweeps executed.
    pub sweeps: usize,
    /// Requests served.
    pub requests: usize,
}

/// Per-tenant service statistics: fixed-memory latency and queue-wait
/// histograms plus admission counters, recorded at drain/submit time.
#[derive(Default)]
struct TenantStats {
    latency_us: LogLinearHistogram,
    queue_us: LogLinearHistogram,
    served: u64,
    rejected_closed: u64,
    rejected_full: u64,
}

/// Coalesces queued single-vector requests into fused multi-RHS sweeps of at
/// most `max_batch` columns.
///
/// Generic over any [`H2Operator`] backend (shared-memory `H2Matrix`, the
/// sharded distributed operator, …) and over the request scalar `S`; the
/// default parameters keep existing `MatvecService` call sites compiling
/// unchanged as the double-precision service.
pub struct MatvecService<O: H2Operator<S> = H2Matrix, S: Scalar = f64> {
    op: Arc<O>,
    max_batch: usize,
    /// Lock-free-read copy of the scheduler's policy table (immutable).
    table: TenantTable,
    sched: Mutex<BatchScheduler<Pending<S>>>,
    metrics: ServiceMetrics,
    tenant_stats: Mutex<Vec<TenantStats>>,
    /// Per-tenant byte slices of a partitioned cache budget, if the host
    /// split one (`h2_cache::split_budget`); exported as a gauge only.
    cache_budgets: Mutex<Option<Vec<usize>>>,
}

impl<S: Scalar, O: H2Operator<S>> MatvecService<O, S> {
    /// A single-tenant FIFO service over `op` that fuses up to `max_batch`
    /// requests per sweep — the legacy behavior, expressed as one implicit
    /// `default` tenant with open admission and an unbounded queue.
    pub fn new(op: Arc<O>, max_batch: usize) -> Self {
        Self::with_tenants(
            op,
            max_batch,
            TenantTable::single_default(),
            QueueMode::Fifo,
        )
    }

    /// A multi-tenant service: requests are queued per tenant under
    /// `table`'s policies and drained according to `mode` (weighted deficit
    /// round robin for QoS, FIFO as the measurable baseline).
    pub fn with_tenants(op: Arc<O>, max_batch: usize, table: TenantTable, mode: QueueMode) -> Self {
        assert!(max_batch >= 1, "batch size must be at least 1");
        assert!(!table.is_empty(), "tenant table must not be empty");
        assert_eq!(
            op.nrows(),
            op.ncols(),
            "MatvecService serves square operators"
        );
        let stats = (0..table.len()).map(|_| TenantStats::default()).collect();
        MatvecService {
            op,
            max_batch,
            table: table.clone(),
            sched: Mutex::new(BatchScheduler::new(table, mode)),
            metrics: ServiceMetrics::new(),
            tenant_stats: Mutex::new(stats),
            cache_budgets: Mutex::new(None),
        }
    }

    /// The served operator.
    pub fn operator(&self) -> &Arc<O> {
        &self.op
    }

    /// The batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The tenant policy table the service schedules under.
    pub fn tenant_table(&self) -> &TenantTable {
        &self.table
    }

    /// Records the per-tenant slices of a partitioned cache budget (from
    /// [`h2_cache::split_budget`] over [`TenantTable::cache_shares`]) so
    /// they appear in [`Self::tenant_prometheus_text`]. Index order must
    /// match the tenant table; extra entries are ignored.
    pub fn set_tenant_cache_budgets(&self, budgets: Vec<usize>) {
        *self.cache_budgets.lock().unwrap() = Some(budgets);
    }

    /// Enqueues a request for the default tenant (index 0);
    /// [`SubmitError::LengthMismatch`] if the vector length does not match
    /// the operator, [`SubmitError::AdmissionRejected`] if tenant 0's
    /// policy refuses it (never, under [`Self::new`]'s default policy).
    pub fn submit(&self, rhs: Vec<S>) -> Result<Ticket<S>, SubmitError> {
        self.submit_idx(0, rhs)
    }

    /// Enqueues a request for the named tenant, enforcing its admission
    /// state and queue-depth cap.
    pub fn submit_for(&self, tenant: &str, rhs: Vec<S>) -> Result<Ticket<S>, SubmitError> {
        match self.table.index_of(tenant) {
            Some(idx) => self.submit_idx(idx, rhs),
            None => {
                h2_telemetry::counter_add!("tenant.rejected", 1);
                Err(SubmitError::AdmissionRejected {
                    tenant: tenant.to_string(),
                    reason: AdmitError::UnknownTenant,
                })
            }
        }
    }

    fn submit_idx(&self, idx: usize, rhs: Vec<S>) -> Result<Ticket<S>, SubmitError> {
        if rhs.len() != self.op.ncols() {
            return Err(SubmitError::LengthMismatch {
                got: rhs.len(),
                expected: self.op.ncols(),
                index: None,
            });
        }
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            rhs,
            tx,
            enqueued: Instant::now(),
        };
        let outcome = self.sched.lock().unwrap().push(idx, pending);
        match outcome {
            Ok(()) => {
                h2_telemetry::counter_add!("tenant.admitted", 1);
                Ok(Ticket { rx })
            }
            Err(reason) => {
                h2_telemetry::counter_add!("tenant.rejected", 1);
                let mut stats = self.tenant_stats.lock().unwrap();
                match reason {
                    AdmitError::Closed => stats[idx].rejected_closed += 1,
                    AdmitError::QueueFull { .. } => stats[idx].rejected_full += 1,
                    AdmitError::UnknownTenant => {}
                }
                Err(SubmitError::AdmissionRejected {
                    tenant: self.table.id(idx).to_string(),
                    reason,
                })
            }
        }
    }

    /// Enqueues a whole batch atomically, one ticket per right-hand side.
    ///
    /// All vectors are validated *before* anything is enqueued, so a
    /// rejection leaves the queue untouched — no partial batches. An empty
    /// batch is a typed [`SubmitError::EmptyBatch`], never a panic and
    /// never a silent no-op that would strand a caller waiting for tickets.
    pub fn submit_batch(&self, batch: Vec<Vec<S>>) -> Result<Vec<Ticket<S>>, SubmitError> {
        if batch.is_empty() {
            return Err(SubmitError::EmptyBatch);
        }
        for (i, rhs) in batch.iter().enumerate() {
            if rhs.len() != self.op.ncols() {
                return Err(SubmitError::LengthMismatch {
                    got: rhs.len(),
                    expected: self.op.ncols(),
                    index: Some(i),
                });
            }
        }
        let mut tickets = Vec::with_capacity(batch.len());
        let mut sched = self.sched.lock().unwrap();
        // Pre-check capacity so the all-or-nothing contract extends to the
        // tenant queue cap: either every vector fits or none is enqueued.
        let policy = self.table.policy(0);
        let depth = sched.queue_depth(0);
        if policy.max_queue.saturating_sub(depth) < batch.len() {
            h2_telemetry::counter_add!("tenant.rejected", 1);
            self.tenant_stats.lock().unwrap()[0].rejected_full += 1;
            return Err(SubmitError::AdmissionRejected {
                tenant: self.table.id(0).to_string(),
                reason: AdmitError::QueueFull {
                    depth,
                    max: policy.max_queue,
                },
            });
        }
        let now = Instant::now();
        for rhs in batch {
            let (tx, rx) = mpsc::channel();
            let pending = Pending {
                rhs,
                tx,
                enqueued: now,
            };
            sched.push(0, pending).map_err(|reason| {
                h2_telemetry::counter_add!("tenant.rejected", 1);
                SubmitError::AdmissionRejected {
                    tenant: self.table.id(0).to_string(),
                    reason,
                }
            })?;
            h2_telemetry::counter_add!("tenant.admitted", 1);
            tickets.push(Ticket { rx });
        }
        Ok(tickets)
    }

    /// Requests currently queued across all tenants.
    pub fn pending(&self) -> usize {
        self.sched.lock().unwrap().len()
    }

    /// Requests currently queued for one tenant (0 for unknown names).
    pub fn pending_for(&self, tenant: &str) -> usize {
        match self.table.index_of(tenant) {
            Some(idx) => self.sched.lock().unwrap().queue_depth(idx),
            None => 0,
        }
    }

    /// Serves every queued request in fused sweeps of at most
    /// [`Self::max_batch`] columns and resolves their tickets.
    pub fn drain(&self) -> DrainReport {
        let mut report = DrainReport {
            sweeps: 0,
            requests: 0,
        };
        loop {
            let batch: Vec<(usize, Pending<S>)> =
                self.sched.lock().unwrap().next_batch(self.max_batch);
            if batch.is_empty() {
                return report;
            }
            self.sweep(&batch);
            report.sweeps += 1;
            report.requests += batch.len();
        }
    }

    /// One fused sweep over `batch` requests (tagged with their tenant
    /// index). A backend failure resolves every ticket in the batch with
    /// [`SubmitError::Backend`] — callers blocked in [`Ticket::wait`] get
    /// the typed error, not a hang.
    fn sweep(&self, batch: &[(usize, Pending<S>)]) {
        let n = self.op.nrows();
        // Every fused batch is one trace: the scope tags this sweep's spans
        // (and, through the distributed coordinator, the workers' spans)
        // with a fresh id unless the caller already opened one.
        let _trace = (h2_telemetry::current_trace() == 0)
            .then(|| h2_telemetry::trace_scope(h2_telemetry::next_trace_id()));
        let sp = h2_telemetry::span_labeled("serve.sweep", format!("k={}", batch.len()));
        h2_telemetry::counter_add!("serve.sweeps", 1);
        h2_telemetry::counter_add!("serve.requests", batch.len() as u64);
        let t0 = Instant::now();
        // Queue wait ends the moment the sweep starts; compute time is the
        // sweep itself (shared by every request it serves).
        let waits: Vec<_> = batch
            .iter()
            .map(|(_, p)| t0.saturating_duration_since(p.enqueued))
            .collect();
        let results: Result<Vec<Vec<S>>, _> = if batch.len() == 1 {
            // Singleton fast path: no panel gather/scatter.
            self.op.try_matvec(&batch[0].1.rhs).map(|y| vec![y])
        } else {
            let mut panel = MatrixS::<S>::zeros(n, batch.len());
            for (c, (_, p)) in batch.iter().enumerate() {
                panel.col_mut(c).copy_from_slice(&p.rhs);
            }
            self.op
                .try_matmat(&panel)
                .map(|out| (0..batch.len()).map(|c| out.col(c).to_vec()).collect())
        };
        let busy = t0.elapsed();
        drop(sp);
        self.metrics.record_sweep(batch.len(), busy, &waits);
        {
            // Per-tenant accounting: queue wait plus the shared sweep time
            // is each request's end-to-end latency.
            let mut stats = self.tenant_stats.lock().unwrap();
            for ((tenant, _), wait) in batch.iter().zip(waits.iter()) {
                let s = &mut stats[*tenant];
                s.queue_us.record(wait.as_micros() as u64);
                s.latency_us.record((*wait + busy).as_micros() as u64);
                s.served += 1;
            }
        }
        match results {
            Ok(results) => {
                for ((_, p), y) in batch.iter().zip(results) {
                    // A dropped ticket just means nobody is waiting; not an
                    // error.
                    let _ = p.tx.send(Ok(y));
                }
            }
            Err(e) => {
                h2_telemetry::counter_add!("serve.failed_sweeps", 1);
                for (_, p) in batch {
                    let _ = p.tx.send(Err(SubmitError::Backend {
                        detail: e.detail.clone(),
                    }));
                }
            }
        }
    }

    /// Snapshot of the accumulated metrics. When the served operator runs a
    /// budgeted block cache (see `h2-cache`), its counter snapshot rides
    /// along so the cache series appear in the Prometheus exposition.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.cache = self.op.cache_stats();
        snap
    }

    /// Windowed snapshot: only what was recorded since the previous
    /// `metrics_since_last` call (see
    /// [`ServiceMetrics::snapshot_since_last`]). Cache stats ride along as
    /// in [`Self::metrics`]; they stay cumulative (the cache has no
    /// windowed view).
    pub fn metrics_since_last(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot_since_last();
        snap.cache = self.op.cache_stats();
        snap
    }

    /// The raw metric accumulator, for benchmark-only modes such as
    /// [`ServiceMetrics::keep_exact_samples`].
    pub fn service_metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Clears the accumulated metrics, including the per-tenant histograms
    /// (queued requests are unaffected).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
        let mut stats = self.tenant_stats.lock().unwrap();
        for s in stats.iter_mut() {
            *s = TenantStats::default();
        }
    }

    /// A tenant's end-to-end latency quantile in microseconds (0 when the
    /// tenant is unknown or has served nothing). Backed by the per-tenant
    /// log-linear histogram, so the value is exact to within one bucket
    /// width — what the `tenant_qos` bench gates p99 on.
    pub fn tenant_latency_quantile_us(&self, tenant: &str, q: f64) -> u64 {
        match self.table.index_of(tenant) {
            Some(idx) => self.tenant_stats.lock().unwrap()[idx]
                .latency_us
                .quantile(q),
            None => 0,
        }
    }

    /// Requests served for a tenant so far (0 for unknown names).
    pub fn tenant_served(&self, tenant: &str) -> u64 {
        match self.table.index_of(tenant) {
            Some(idx) => self.tenant_stats.lock().unwrap()[idx].served,
            None => 0,
        }
    }

    /// Per-tenant Prometheus series (`h2_tenant_*`), label-escaped:
    /// requests served, admission rejections by reason, live queue depth,
    /// scheduling weight, latency and queue-wait quantiles, and — when the
    /// host registered a partitioned cache budget
    /// ([`Self::set_tenant_cache_budgets`]) — each tenant's byte slice.
    /// Append to [`MetricsSnapshot::prometheus_text`] for a full exposition.
    pub fn tenant_prometheus_text(&self) -> String {
        let mut out = String::new();
        let depths: Vec<usize> = {
            let sched = self.sched.lock().unwrap();
            (0..self.table.len())
                .map(|i| sched.queue_depth(i))
                .collect()
        };
        let stats = self.tenant_stats.lock().unwrap();
        let names: Vec<String> = self
            .table
            .iter()
            .map(|(_, id, _)| escape_label(id.as_str()))
            .collect();

        out.push_str("# TYPE h2_tenant_requests_total counter\n");
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(
                out,
                "h2_tenant_requests_total{{tenant=\"{name}\"}} {}",
                stats[i].served
            );
        }
        out.push_str("# TYPE h2_tenant_rejected_total counter\n");
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(
                out,
                "h2_tenant_rejected_total{{tenant=\"{name}\",reason=\"queue_full\"}} {}",
                stats[i].rejected_full
            );
            let _ = writeln!(
                out,
                "h2_tenant_rejected_total{{tenant=\"{name}\",reason=\"closed\"}} {}",
                stats[i].rejected_closed
            );
        }
        out.push_str("# TYPE h2_tenant_queue_depth gauge\n");
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(
                out,
                "h2_tenant_queue_depth{{tenant=\"{name}\"}} {}",
                depths[i]
            );
        }
        out.push_str("# TYPE h2_tenant_weight gauge\n");
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(
                out,
                "h2_tenant_weight{{tenant=\"{name}\"}} {}",
                self.table.policy(i).weight
            );
        }
        for (metric, pick) in [
            (
                "h2_tenant_latency_microseconds",
                (|s: &TenantStats| &s.latency_us) as fn(&TenantStats) -> &LogLinearHistogram,
            ),
            ("h2_tenant_queue_wait_microseconds", |s: &TenantStats| {
                &s.queue_us
            }),
        ] {
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (i, name) in names.iter().enumerate() {
                let h = pick(&stats[i]);
                for (q, qs) in [(0.5, "0.5"), (0.99, "0.99")] {
                    let _ = writeln!(
                        out,
                        "{metric}{{tenant=\"{name}\",quantile=\"{qs}\"}} {}",
                        h.quantile(q)
                    );
                }
            }
        }
        if let Some(budgets) = self.cache_budgets.lock().unwrap().as_ref() {
            out.push_str("# TYPE h2_tenant_cache_budget_bytes gauge\n");
            for (i, name) in names.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "h2_tenant_cache_budget_bytes{{tenant=\"{name}\"}} {}",
                    budgets.get(i).copied().unwrap_or(0)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2MatrixS, MemoryMode, MixedH2};
    use h2_kernels::Coulomb;
    use h2_points::gen;
    use h2_tenant::TenantPolicy;

    fn op(mode: MemoryMode) -> Arc<H2Matrix> {
        let pts = gen::uniform_cube(500, 3, 23);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
    }

    fn rhs(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i + 7 * seed) as f64 * 0.61).sin())
            .collect()
    }

    #[test]
    fn drains_64_requests_in_ceil_64_over_k_sweeps() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let op = op(mode);
            for k in [1usize, 4, 16, 48] {
                let svc = MatvecService::new(op.clone(), k);
                let tickets: Vec<Ticket> = (0..64)
                    .map(|s| svc.submit(rhs(op.n(), s)).unwrap())
                    .collect();
                assert_eq!(svc.pending(), 64);
                let report = svc.drain();
                assert_eq!(report.requests, 64);
                assert_eq!(report.sweeps, 64_usize.div_ceil(k), "k={k}");
                assert_eq!(svc.pending(), 0);
                // Every request gets exactly the result a standalone matvec
                // would produce, bit for bit, regardless of batching.
                for (s, t) in tickets.into_iter().enumerate() {
                    assert_eq!(t.wait().unwrap(), op.matvec(&rhs(op.n(), s)), "request {s}");
                }
                let m = svc.metrics();
                assert_eq!(m.requests, 64);
                assert_eq!(m.sweeps, 64_u64.div_ceil(k as u64));
            }
        }
    }

    #[test]
    fn f32_service_serves_native_f32_requests_bitwise() {
        let pts = gen::uniform_cube(400, 3, 29);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode: MemoryMode::OnTheFly,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        let op = Arc::new(H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg));
        let svc: MatvecService<H2MatrixS<f32>, f32> = MatvecService::new(op.clone(), 4);
        let mk = |s: usize| -> Vec<f32> {
            (0..op.n())
                .map(|i| ((i + 5 * s) as f32 * 0.37).sin())
                .collect()
        };
        let tickets: Vec<Ticket<f32>> = (0..6).map(|s| svc.submit(mk(s)).unwrap()).collect();
        let report = svc.drain();
        assert_eq!((report.sweeps, report.requests), (2, 6));
        for (s, t) in tickets.into_iter().enumerate() {
            // Batched service == standalone f32 matvec, bit for bit.
            assert_eq!(
                t.wait().unwrap(),
                op.as_ref().matvec::<f32>(&mk(s)),
                "request {s}"
            );
        }
    }

    #[test]
    fn mixed_precision_service_serves_f64_requests_over_f32_storage() {
        let pts = gen::uniform_cube(400, 3, 31);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-6, 3),
            mode: MemoryMode::Normal,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2_64 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
        let h2_32 = Arc::new(H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg));
        let svc = MatvecService::new(Arc::new(MixedH2::new(h2_32.clone())), 3);
        let b = rhs(h2_64.n(), 1);
        let got = svc.submit(b.clone()).unwrap();
        svc.drain();
        let y = got.wait().unwrap();
        // Bitwise equal to the serial mixed-precision apply, and within
        // single-precision distance of the f64 operator.
        assert_eq!(y, h2_32.matvec_f64(&b));
        let err = h2_linalg::vec_ops::rel_err(&y, &h2_64.matvec(&b));
        assert!(err <= 1e-5, "mixed service rel err {err}");
    }

    #[test]
    fn submit_rejects_wrong_length() {
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        assert_eq!(
            svc.submit(vec![1.0; 3]).map(|_| ()).unwrap_err(),
            SubmitError::LengthMismatch {
                got: 3,
                expected: 500,
                index: None,
            }
        );
    }

    #[test]
    fn submit_batch_rejects_empty_batch_with_typed_error() {
        // Regression: an empty batch must be a typed error, not a panic and
        // not a silent zero-ticket success.
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        assert_eq!(
            svc.submit_batch(vec![]).map(|_| ()).unwrap_err(),
            SubmitError::EmptyBatch
        );
        assert_eq!(svc.pending(), 0);
        // And the error is a std::error::Error with a readable message.
        let e: Box<dyn std::error::Error> = Box::new(SubmitError::EmptyBatch);
        assert!(e.to_string().contains("empty batch"));
    }

    #[test]
    fn submit_batch_is_all_or_nothing() {
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        let n = svc.operator().n();
        // One bad vector anywhere rejects the whole batch, queue untouched.
        let err = svc
            .submit_batch(vec![rhs(n, 0), vec![1.0; 3], rhs(n, 2)])
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::LengthMismatch {
                got: 3,
                expected: n,
                index: Some(1),
            }
        );
        assert_eq!(svc.pending(), 0);
        // A valid batch mints one ticket per vector and drains bitwise
        // identically to individual submissions.
        let batch: Vec<Vec<f64>> = (0..5).map(|s| rhs(n, s)).collect();
        let tickets = svc.submit_batch(batch).unwrap();
        assert_eq!(tickets.len(), 5);
        assert_eq!(svc.pending(), 5);
        svc.drain();
        for (s, t) in tickets.into_iter().enumerate() {
            assert_eq!(
                t.wait().unwrap(),
                svc.operator().matvec(&rhs(n, s)),
                "entry {s}"
            );
        }
    }

    #[test]
    fn metrics_carry_cache_stats_when_operator_is_budgeted() {
        use h2_core::CacheBudget;
        let pts = gen::uniform_cube(500, 3, 23);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode: MemoryMode::OnTheFly,
            leaf_size: 48,
            eta: 0.7,
            cache_budget: CacheBudget::Ratio(0.5),
            ..H2Config::default()
        };
        let op = Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg));
        let svc = MatvecService::new(op.clone(), 4);
        let t = svc.submit(rhs(op.n(), 1)).unwrap();
        svc.drain();
        let _ = t.wait().unwrap();
        let m = svc.metrics();
        let cache = m.cache.expect("budgeted operator exports cache stats");
        assert!(cache.budget_bytes > 0);
        assert!(cache.hits + cache.misses > 0);
        // The Prometheus exposition picks the cache series up.
        let text = m.prometheus_text();
        assert!(text.contains("h2_serve_cache_hits_total"));
        assert!(text.contains("h2_serve_cache_resident_bytes"));
        // An uncached operator exports no cache series.
        let plain = MatvecService::new(self::op(MemoryMode::OnTheFly), 4);
        assert!(plain.metrics().cache.is_none());
        assert!(!plain.metrics().prometheus_text().contains("h2_serve_cache"));
    }

    #[test]
    fn sweeps_are_trace_tagged_and_windowed_metrics_advance() {
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        let t = svc.submit(rhs(500, 3)).unwrap();
        svc.drain();
        t.wait().unwrap();
        let w = svc.metrics_since_last();
        assert_eq!((w.requests, w.sweeps), (1, 1));
        assert!(w.p50_latency_us > 0);
        let w2 = svc.metrics_since_last();
        assert_eq!(w2.requests, 0, "window advanced past the first sweep");
        // Every fused batch ran under its own trace scope: the sweep span
        // carries a nonzero trace id.
        assert!(
            h2_telemetry::snapshot()
                .spans_named("serve.sweep")
                .any(|s| s.trace != 0),
            "no trace-tagged serve.sweep span found"
        );
    }

    #[test]
    fn drain_on_empty_queue_is_a_noop() {
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        assert_eq!(
            svc.drain(),
            DrainReport {
                sweeps: 0,
                requests: 0
            }
        );
    }

    #[test]
    fn cross_thread_submission() {
        let svc = Arc::new(MatvecService::new(op(MemoryMode::OnTheFly), 8));
        let n = svc.operator().n();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let ticket = svc.submit(rhs(n, t)).unwrap();
                    (t, ticket)
                })
            })
            .collect();
        let tickets: Vec<(usize, Ticket)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        svc.drain();
        for (t, ticket) in tickets {
            assert_eq!(ticket.wait().unwrap(), svc.operator().matvec(&rhs(n, t)));
        }
    }

    #[test]
    fn backend_failure_resolves_every_ticket_with_a_typed_error() {
        use h2_core::ApplyError;
        // A backend whose try paths always fail (a stand-in for a
        // distributed operator with a dead shard).
        struct Broken;
        impl H2Operator for Broken {
            fn dims(&self) -> (usize, usize) {
                (4, 4)
            }
            fn matvec(&self, _b: &[f64]) -> Vec<f64> {
                unreachable!("service must use the fallible path")
            }
            fn try_matvec(&self, _b: &[f64]) -> Result<Vec<f64>, ApplyError> {
                Err(ApplyError::new("shard 1 lost: connection closed by peer"))
            }
            fn try_matmat(&self, _b: &MatrixS<f64>) -> Result<MatrixS<f64>, ApplyError> {
                Err(ApplyError::new("shard 1 lost: connection closed by peer"))
            }
        }
        // Both the singleton and the fused path deliver the error through
        // every ticket of the failed sweep — no hang, no panic.
        for k in [1usize, 4] {
            let svc = MatvecService::new(Arc::new(Broken), k);
            let tickets: Vec<Ticket> = (0..3).map(|_| svc.submit(vec![0.0; 4]).unwrap()).collect();
            let report = svc.drain();
            assert_eq!(report.requests, 3);
            for t in tickets {
                let err = t.wait().unwrap_err();
                assert_eq!(
                    err,
                    SubmitError::Backend {
                        detail: "shard 1 lost: connection closed by peer".into(),
                    }
                );
                assert!(err.to_string().contains("backend failure"));
            }
        }
    }

    #[test]
    fn dropping_the_service_resolves_queued_tickets_with_an_error() {
        let svc = MatvecService::new(op(MemoryMode::OnTheFly), 4);
        let t = svc.submit(rhs(500, 0)).unwrap();
        drop(svc);
        // The queued request can never be served; waiting reports that as a
        // typed error instead of panicking.
        let err = t.wait().unwrap_err();
        assert!(matches!(err, SubmitError::Backend { .. }), "{err}");
    }

    fn two_tenant_table(hog_cap: usize) -> TenantTable {
        TenantTable::parse(&format!(
            "[hog]\nweight = 1.0\nmax_queue = {hog_cap}\n\n[light]\nweight = 4.0\n"
        ))
        .unwrap()
    }

    #[test]
    fn tenant_routing_admission_and_results_are_correct() {
        let op = op(MemoryMode::OnTheFly);
        let svc = MatvecService::with_tenants(op.clone(), 4, two_tenant_table(3), QueueMode::Wdrr);
        let n = op.n();
        // Unknown tenants are rejected with a typed error.
        let err = svc.submit_for("nobody", rhs(n, 0)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::AdmissionRejected {
                tenant: "nobody".into(),
                reason: h2_tenant::AdmitError::UnknownTenant,
            }
        );
        assert!(err.to_string().contains("unknown tenant"), "{err}");
        // Length checks fire before admission bookkeeping.
        assert!(matches!(
            svc.submit_for("hog", vec![1.0; 3]).unwrap_err(),
            SubmitError::LengthMismatch { got: 3, .. }
        ));
        // The hog's queue cap rejects the 4th request, leaving 3 queued.
        for s in 0..3 {
            svc.submit_for("hog", rhs(n, s)).unwrap();
        }
        let err = svc.submit_for("hog", rhs(n, 9)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::AdmissionRejected {
                tenant: "hog".into(),
                reason: h2_tenant::AdmitError::QueueFull { depth: 3, max: 3 },
            }
        );
        assert_eq!(svc.pending_for("hog"), 3);
        let t_light = svc.submit_for("light", rhs(n, 5)).unwrap();
        assert_eq!(svc.pending(), 4);
        svc.drain();
        // Results are bitwise identical to standalone matvecs regardless of
        // which tenant carried them.
        assert_eq!(t_light.wait().unwrap(), op.matvec(&rhs(n, 5)));
        assert_eq!(svc.tenant_served("hog"), 3);
        assert_eq!(svc.tenant_served("light"), 1);
    }

    #[test]
    fn wdrr_drains_light_tenant_ahead_of_a_hog_backlog() {
        // With batch size 1, the first 2 sweeps under WDRR must include the
        // light tenant despite the hog having submitted 8 requests first.
        let op = op(MemoryMode::OnTheFly);
        let n = op.n();
        let table = TenantTable::parse("[hog]\nweight = 1.0\n\n[light]\nweight = 4.0\n").unwrap();
        let svc = MatvecService::with_tenants(op.clone(), 1, table, QueueMode::Wdrr);
        for s in 0..8 {
            svc.submit_for("hog", rhs(n, s)).unwrap();
        }
        let t = svc.submit_for("light", rhs(n, 100)).unwrap();
        // Two singleton sweeps: hog (cursor start), then light by weight.
        for _ in 0..2 {
            let batch = svc.sched.lock().unwrap().next_batch(1);
            svc.sweep(&batch);
        }
        assert_eq!(
            t.try_take()
                .expect("light request served within 2 sweeps")
                .unwrap(),
            op.matvec(&rhs(n, 100))
        );
    }

    #[test]
    fn tenant_prometheus_series_are_exported_and_escaped() {
        let op = op(MemoryMode::OnTheFly);
        let n = op.n();
        let table = TenantTable::new([
            ("a\"quote", TenantPolicy::default()),
            (
                "plain",
                TenantPolicy {
                    weight: 2.0,
                    max_queue: 1,
                    ..TenantPolicy::default()
                },
            ),
        ])
        .unwrap();
        let svc = MatvecService::with_tenants(op, 4, table, QueueMode::Wdrr);
        svc.submit_for("plain", rhs(n, 0)).unwrap();
        assert!(svc.submit_for("plain", rhs(n, 1)).is_err()); // cap 1
        svc.drain();
        svc.set_tenant_cache_budgets(vec![300, 700]);
        let text = svc.tenant_prometheus_text();
        assert!(
            text.contains("h2_tenant_requests_total{tenant=\"a\\\"quote\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("h2_tenant_requests_total{tenant=\"plain\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("h2_tenant_rejected_total{tenant=\"plain\",reason=\"queue_full\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("h2_tenant_weight{tenant=\"plain\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("h2_tenant_latency_microseconds{tenant=\"plain\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("h2_tenant_cache_budget_bytes{tenant=\"plain\"} 700"),
            "{text}"
        );
        assert!(svc.tenant_latency_quantile_us("plain", 0.99) > 0);
        // reset_metrics clears the per-tenant accounting too.
        svc.reset_metrics();
        assert_eq!(svc.tenant_served("plain"), 0);
        assert_eq!(svc.tenant_latency_quantile_us("plain", 0.99), 0);
    }

    #[test]
    fn submit_batch_respects_the_default_tenant_queue_cap_atomically() {
        let op = op(MemoryMode::OnTheFly);
        let n = op.n();
        let table = TenantTable::new([(
            "default",
            TenantPolicy {
                max_queue: 3,
                ..TenantPolicy::default()
            },
        )])
        .unwrap();
        let svc = MatvecService::with_tenants(op, 4, table, QueueMode::Fifo);
        svc.submit(rhs(n, 0)).unwrap();
        // 1 queued + 3 more would exceed the cap of 3: all-or-nothing reject.
        let err = svc
            .submit_batch(vec![rhs(n, 1), rhs(n, 2), rhs(n, 3)])
            .unwrap_err();
        assert!(
            matches!(err, SubmitError::AdmissionRejected { .. }),
            "{err}"
        );
        assert_eq!(
            svc.pending(),
            1,
            "rejected batch must not partially enqueue"
        );
        // A fitting batch is accepted whole.
        assert_eq!(
            svc.submit_batch(vec![rhs(n, 1), rhs(n, 2)]).unwrap().len(),
            2
        );
        assert_eq!(svc.pending(), 3);
    }
}
