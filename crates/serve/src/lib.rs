//! # h2-serve
//!
//! Operator serving for H² matrices: **persistence**, a shared **registry**,
//! and a **batched matvec service** — the pieces that let an expensive-to-
//! build, cheap-to-apply operator outlive its process, be shared across
//! requests, and amortize on-the-fly block regeneration across concurrent
//! requests (the paper's §VI-B trade-off, operationalized).
//!
//! - [`codec`]: a versioned binary format (magic, format version, kernel
//!   fingerprint, per-section FNV-1a checksums). On-the-fly operators store
//!   only the tree and skeleton/grid generators — no dense blocks — so their
//!   files are roughly an order of magnitude smaller, mirroring the
//!   in-memory mode split. Loading revalidates everything and returns a
//!   typed [`LoadError`]; it never panics on corrupt input.
//! - [`registry`]: named `Arc<H2Matrix>` operators shared across threads.
//! - [`service`]: queues single-vector requests and drains up to `k` of
//!   them through one fused multi-RHS sweep (`H2Matrix::matmat`), which
//!   generates each on-the-fly block once per batch instead of once per
//!   request. The service is generic over the `H2Operator` trait, so a
//!   sharded distributed operator serves through the same front end —
//!   with [`metrics`] recording end-to-end latency percentiles split into
//!   queue-wait and compute, throughput, and batch-size histograms.
//!
//! ## Quickstart
//!
//! ```
//! use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
//! use h2_kernels::Coulomb;
//! use h2_points::gen;
//! use h2_serve::{codec, MatvecService, OperatorRegistry};
//! use std::sync::Arc;
//!
//! // Build once, save to disk.
//! let pts = gen::uniform_cube(500, 3, 1);
//! let cfg = H2Config {
//!     basis: BasisMethod::data_driven_for_tol(1e-5, 3),
//!     mode: MemoryMode::OnTheFly,
//!     ..H2Config::default()
//! };
//! let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
//! let path = std::env::temp_dir().join("doc.h2op");
//! codec::save(&h2, &path).unwrap();
//!
//! // Later (any process): load, register, serve.
//! let reg = OperatorRegistry::new();
//! let op = reg.load_file("coulomb-cube", &path, Arc::new(Coulomb)).unwrap();
//! std::fs::remove_file(&path).ok();
//! let svc = MatvecService::new(op, 16);
//! let tickets: Vec<_> = (0..4)
//!     .map(|_| svc.submit(vec![1.0; 500]).unwrap())
//!     .collect();
//! svc.drain(); // one fused sweep serves all four requests
//! for t in tickets {
//!     assert_eq!(
//!         t.wait().unwrap(),
//!         reg.get("coulomb-cube").unwrap().matvec(&vec![1.0; 500])
//!     );
//! }
//! ```

pub mod codec;
pub mod error;
pub mod hist;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod service;

pub use codec::{decode, decode_mapped, encode, encode_v3, load, load_mmap, save};
pub use error::{LoadError, SubmitError};
pub use hist::LogLinearHistogram;
pub use http::MetricsServer;
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use registry::{OperatorRegistry, RegistryEntryBytes};
pub use service::{DrainReport, MatvecService, Ticket};

// Tenant QoS vocabulary, re-exported so serving callers need only h2-serve.
pub use h2_tenant::{Admission, AdmitError, QueueMode, TenantId, TenantPolicy, TenantTable};
