//! Named registry of shared, immutable H² operators.
//!
//! Operators are expensive to build and cheap to share: the registry hands
//! out `Arc<H2Matrix>` clones so any number of services/threads can apply
//! the same operator concurrently (the matvec is `&self`).

use crate::error::LoadError;
use h2_core::H2Matrix;
use h2_kernels::Kernel;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A concurrent name → operator map.
#[derive(Default)]
pub struct OperatorRegistry {
    map: RwLock<HashMap<String, Arc<H2Matrix>>>,
}

impl OperatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `op` under `name`, returning the operator it replaced (if
    /// any).
    pub fn insert(&self, name: impl Into<String>, op: Arc<H2Matrix>) -> Option<Arc<H2Matrix>> {
        self.map.write().unwrap().insert(name.into(), op)
    }

    /// Looks up an operator by name.
    pub fn get(&self, name: &str) -> Option<Arc<H2Matrix>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Removes and returns the named operator.
    pub fn remove(&self, name: &str) -> Option<Arc<H2Matrix>> {
        self.map.write().unwrap().remove(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }

    /// Loads an operator file (see [`crate::codec::load`]) and registers it
    /// under `name`, returning the shared handle.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
    ) -> Result<Arc<H2Matrix>, LoadError> {
        let op = Arc::new(crate::codec::load(path, kernel)?);
        self.insert(name, op.clone());
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, MemoryMode};
    use h2_kernels::Coulomb;
    use h2_points::gen;

    fn tiny() -> Arc<H2Matrix> {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
        };
        Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
    }

    #[test]
    fn insert_get_remove() {
        let reg = OperatorRegistry::new();
        assert!(reg.is_empty());
        let op = tiny();
        assert!(reg.insert("a", op.clone()).is_none());
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &op));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        let replaced = reg.insert("a", tiny());
        assert!(replaced.is_some_and(|r| Arc::ptr_eq(&r, &op)));
        assert!(reg.remove("a").is_some());
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn load_file_registers() {
        let reg = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let loaded = reg.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        std::fs::remove_file(&path).ok();
        let b = vec![1.0; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        assert!(reg.get("disk").is_some());
    }
}
