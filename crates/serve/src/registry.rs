//! Named registry of shared, immutable H² operators.
//!
//! Operators are expensive to build and cheap to share: the registry hands
//! out `Arc<H2MatrixS<S>>` clones so any number of services/threads can
//! apply the same operator concurrently (the matvec is `&self`). The
//! registry is homogeneous in the storage scalar `S` (default `f64`): a
//! deployment serving both widths keeps one `OperatorRegistry<f64>` and one
//! `OperatorRegistry<f32>`, dispatching on [`crate::codec::stored_scalar`].

use crate::error::LoadError;
use h2_core::{CacheBudget, H2MatrixS};
use h2_kernels::Kernel;
use h2_linalg::Scalar;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A concurrent name → operator map over storage scalar `S`.
#[derive(Default)]
pub struct OperatorRegistry<S: Scalar = f64> {
    map: RwLock<HashMap<String, Arc<H2MatrixS<S>>>>,
}

impl<S: Scalar> OperatorRegistry<S> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `op` under `name`, returning the operator it replaced (if
    /// any).
    pub fn insert(
        &self,
        name: impl Into<String>,
        op: Arc<H2MatrixS<S>>,
    ) -> Option<Arc<H2MatrixS<S>>> {
        self.map.write().unwrap().insert(name.into(), op)
    }

    /// Looks up an operator by name.
    pub fn get(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Removes and returns the named operator.
    pub fn remove(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map.write().unwrap().remove(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }

    /// Loads an operator file (see [`crate::codec::load`]) and registers it
    /// under `name`, returning the shared handle.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        self.load_file_with_budget(name, path, kernel, CacheBudget::Off)
    }

    /// Like [`Self::load_file`], but installs a per-operator block-cache
    /// budget before the operator is frozen behind its `Arc` (files never
    /// persist a cache — it is a runtime tier). The budget only takes
    /// effect for on-the-fly operators; normal-mode files ignore it.
    pub fn load_file_with_budget(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
        budget: CacheBudget,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        let mut op = crate::codec::load::<S>(path, kernel)?;
        if !budget.is_off() {
            op.set_cache_budget(budget);
        }
        let op = Arc::new(op);
        self.insert(name, op.clone());
        Ok(op)
    }

    /// Resident bytes per registry entry, sorted by name: the operator's
    /// exact logical footprint (`memory_report().total()`, which includes
    /// any cached-tier blocks) next to the cached-tier share alone, plus
    /// the builder provenance the operator was constructed with. This is
    /// what `h2serve metrics` reports per entry.
    pub fn resident_bytes(&self) -> Vec<RegistryEntryBytes> {
        let mut v: Vec<RegistryEntryBytes> = self
            .map
            .read()
            .unwrap()
            .iter()
            .map(|(name, op)| {
                let report = op.memory_report();
                RegistryEntryBytes {
                    name: name.clone(),
                    total_bytes: report.total(),
                    cached_bytes: report.cached_blocks,
                    builder: op.provenance(),
                }
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Per-entry resident bytes in the Prometheus text exposition format
    /// (one `operator`-labeled gauge sample per entry and series). The
    /// builder-provenance series is an info-style gauge: constant 1, with
    /// the provenance in the `builder` label. Registry names are
    /// caller-chosen strings, so label values are escaped per the
    /// exposition format (`escape_label`) — a hostile name cannot break
    /// out of its label or forge extra samples.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.resident_bytes();
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE h2_registry_operator_resident_bytes gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_resident_bytes{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.total_bytes
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_cached_bytes gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_cached_bytes{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.cached_bytes
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_builder gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_builder{{operator=\"{}\",builder=\"{}\",code=\"{}\"}} 1",
                escape_label(&e.name),
                escape_label(e.builder.name()),
                e.builder.code()
            );
        }
        out
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// are the three characters the text exposition format requires escaping
/// inside `label="…"`.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One row of [`OperatorRegistry::resident_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntryBytes {
    /// Registry name of the operator.
    pub name: String,
    /// Exact logical footprint in bytes (tree, generators, blocks, cache).
    pub total_bytes: usize,
    /// Bytes held by the budgeted cache tier (0 without a cache).
    pub cached_bytes: usize,
    /// Construction pipeline the operator came from (persisted through the
    /// codec's provenance byte; unknown codes surface as `unknown`).
    pub builder: h2_core::BuilderProvenance,
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
    use h2_kernels::Coulomb;
    use h2_points::gen;

    fn tiny() -> Arc<H2Matrix> {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
    }

    #[test]
    fn insert_get_remove() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        assert!(reg.is_empty());
        let op = tiny();
        assert!(reg.insert("a", op.clone()).is_none());
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &op));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        let replaced = reg.insert("a", tiny());
        assert!(replaced.is_some_and(|r| Arc::ptr_eq(&r, &op)));
        assert!(reg.remove("a").is_some());
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn load_file_registers() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let loaded = reg.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        std::fs::remove_file(&path).ok();
        let b = vec![1.0; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        assert!(reg.get("disk").is_some());
    }

    #[test]
    fn resident_bytes_reports_every_entry() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let a = tiny();
        let b = tiny();
        reg.insert("beta", b.clone());
        reg.insert("alpha", a.clone());
        let rows = reg.resident_bytes();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alpha");
        assert_eq!(rows[1].name, "beta");
        assert_eq!(rows[0].total_bytes, a.memory_report().total());
        assert_eq!(rows[0].cached_bytes, 0, "no budget, no cached tier");
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE h2_registry_operator_resident_bytes gauge\n"));
        assert!(text.contains(&format!(
            "h2_registry_operator_resident_bytes{{operator=\"alpha\"}} {}\n",
            rows[0].total_bytes
        )));
        assert!(text.contains("h2_registry_operator_cached_bytes{operator=\"beta\"} 0\n"));
        assert_eq!(rows[0].builder, h2_core::BuilderProvenance::AnchorNet);
        assert!(text.contains(
            "h2_registry_operator_builder{operator=\"alpha\",builder=\"anchor-net\",code=\"0\"} 1\n"
        ));
    }

    #[test]
    fn hostile_operator_names_are_escaped_in_labels() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        // A name abusing every character the exposition format escapes: a
        // quote to break out of the label, a newline to forge a sample
        // line, and a backslash to defuse a naive quote-escaper.
        reg.insert("evil\"} 1\nforged_metric 42\\", op);
        let text = reg.prometheus_text();
        // Golden: the whole hostile name stays inside one quoted label.
        assert!(
            text.contains(
                "h2_registry_operator_cached_bytes{operator=\"evil\\\"} 1\\nforged_metric 42\\\\\"} 0\n"
            ),
            "escaped label not found in:\n{text}"
        );
        assert!(
            !text.contains("\nforged_metric"),
            "a raw newline in a name forged a sample line:\n{text}"
        );
        // Every line is still well-formed: a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("h2_registry_"),
                "malformed exposition line: {line}"
            );
        }
        assert_eq!(escape_label("plain-name_0"), "plain-name_0");
    }

    #[test]
    fn registry_surfaces_sketched_provenance() {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            builder: h2_core::BuilderStrategy::sketched_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            seed: 9,
            ..H2Config::default()
        };
        let op = Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg));
        let reg: OperatorRegistry = OperatorRegistry::new();
        reg.insert("rand", op);
        let rows = reg.resident_bytes();
        assert_eq!(rows[0].builder, h2_core::BuilderProvenance::Sketched);
        assert!(reg.prometheus_text().contains(
            "h2_registry_operator_builder{operator=\"rand\",builder=\"sketched\",code=\"1\"} 1\n"
        ));
    }

    #[test]
    fn load_file_with_budget_installs_a_per_operator_cache() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_budget_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let cached = reg
            .load_file_with_budget("warm", &path, Arc::new(Coulomb), CacheBudget::Ratio(0.5))
            .unwrap();
        let cold = reg
            .load_file_with_budget("cold", &path, Arc::new(Coulomb), CacheBudget::Off)
            .unwrap();
        std::fs::remove_file(&path).ok();
        let stats = cached.cache_stats().expect("budget installs a cache");
        assert!(stats.budget_bytes > 0);
        assert!(stats.resident_bytes > 0);
        assert!(cold.cache_stats().is_none());
        // The cached tier applies normal-mode arithmetic (bitwise identical
        // to a materialized build, not to the fused on-the-fly summation
        // order), so the two loads agree to rounding, and the registry's
        // per-entry report sees the cached bytes.
        let b = vec![1.0; op.n()];
        let err = h2_linalg::vec_ops::rel_err(&cached.matvec(&b), &cold.matvec(&b));
        assert!(err < 1e-12, "cached vs uncached load rel err {err}");
        let rows = reg.resident_bytes();
        let warm = rows.iter().find(|r| r.name == "warm").unwrap();
        let cold_row = rows.iter().find(|r| r.name == "cold").unwrap();
        assert_eq!(warm.cached_bytes, stats.resident_bytes);
        assert_eq!(cold_row.cached_bytes, 0);
        assert!(warm.total_bytes > cold_row.total_bytes);
    }

    #[test]
    fn f32_registry_round_trips_and_rejects_f64_files() {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        let op = Arc::new(H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg));
        let path = std::env::temp_dir().join("h2serve_registry_f32_test.h2op");
        crate::codec::save(op.as_ref(), &path).unwrap();
        let reg32: OperatorRegistry<f32> = OperatorRegistry::new();
        let loaded = reg32.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        let b = vec![1.0f32; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        // The f64 registry refuses the same file with the typed error.
        let reg64: OperatorRegistry = OperatorRegistry::new();
        let err = reg64
            .load_file("disk", &path, Arc::new(Coulomb))
            .err()
            .expect("width mismatch must fail");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            LoadError::PrecisionMismatch {
                stored: "f32",
                requested: "f64",
            }
        ));
    }
}
