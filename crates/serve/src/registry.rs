//! Named registry of shared H² operators with versioned hot-swap.
//!
//! Operators are expensive to build and cheap to share: the registry hands
//! out `Arc<H2MatrixS<S>>` clones so any number of services/threads can
//! apply the same operator concurrently (the matvec is `&self`). The
//! registry is homogeneous in the storage scalar `S` (default `f64`): a
//! deployment serving both widths keeps one `OperatorRegistry<f64>` and one
//! `OperatorRegistry<f32>`, dispatching on [`crate::codec::stored_scalar`].
//!
//! ## Versioned entries and the swap protocol
//!
//! Each name maps to a **versioned slot** rather than a bare `Arc`: the
//! slot holds the current operator behind its own lock plus an update
//! counter. Dynamic operators (see `h2_core::update`) mutate through
//! [`OperatorRegistry::update_with`], which runs **clone → apply → swap**:
//! the current operator is cloned, the update closure runs on the private
//! clone, and only on success is the clone atomically swapped in. The
//! consequences are exactly the serving semantics we want:
//!
//! - a matvec that called [`OperatorRegistry::get`] before the swap holds
//!   its own `Arc` and finishes on the epoch it started on;
//! - a submission after the swap sees the new epoch;
//! - a failed update leaves the registry untouched — no torn operator is
//!   ever observable;
//! - concurrent updaters to the same entry are serialized by a per-slot
//!   update mutex, so no update is silently lost, while readers are never
//!   blocked by an in-progress clone/apply.

use crate::error::LoadError;
use h2_core::{CacheBudget, H2MatrixS};
use h2_kernels::Kernel;
use h2_linalg::Scalar;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One registry slot: the current operator plus its swap history. Readers
/// clone the inner `Arc` under a short read lock; swappers replace it under
/// the write lock; updaters additionally serialize on `update_lock` so the
/// clone-apply phase (which can be long) never blocks readers and never
/// races another updater.
struct Versioned<S: Scalar> {
    op: RwLock<Arc<H2MatrixS<S>>>,
    updates: AtomicU64,
    update_lock: Mutex<()>,
}

impl<S: Scalar> Versioned<S> {
    fn new(op: Arc<H2MatrixS<S>>) -> Self {
        Versioned {
            op: RwLock::new(op),
            updates: AtomicU64::new(0),
            update_lock: Mutex::new(()),
        }
    }

    fn current(&self) -> Arc<H2MatrixS<S>> {
        self.op.read().unwrap().clone()
    }
}

/// What [`OperatorRegistry::update_with`] hands back for a known name: the
/// freshly installed operator plus the closure's value on success, or the
/// closure's error (registry untouched) on failure.
pub type UpdateOutcome<S, R, E> = Result<(Arc<H2MatrixS<S>>, R), E>;

/// A concurrent name → versioned operator slot map over storage scalar `S`.
#[derive(Default)]
pub struct OperatorRegistry<S: Scalar = f64> {
    map: RwLock<HashMap<String, Arc<Versioned<S>>>>,
}

impl<S: Scalar> OperatorRegistry<S> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `op` under `name` in a fresh versioned slot (update count
    /// 0), returning the operator it replaced (if any).
    pub fn insert(
        &self,
        name: impl Into<String>,
        op: Arc<H2MatrixS<S>>,
    ) -> Option<Arc<H2MatrixS<S>>> {
        self.map
            .write()
            .unwrap()
            .insert(name.into(), Arc::new(Versioned::new(op)))
            .map(|old| old.current())
    }

    /// Looks up the current operator under `name`. The returned `Arc` is a
    /// stable snapshot: a later [`Self::swap`] or [`Self::update_with`]
    /// does not affect it, so an in-flight sweep finishes on the epoch it
    /// started on.
    pub fn get(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map.read().unwrap().get(name).map(|v| v.current())
    }

    /// Atomically replaces the operator in `name`'s existing slot,
    /// returning the previous operator. Unlike [`Self::insert`] the slot
    /// (and its update count, which increments) survives; returns `None`
    /// without registering anything when the name is unknown.
    pub fn swap(&self, name: &str, op: Arc<H2MatrixS<S>>) -> Option<Arc<H2MatrixS<S>>> {
        let slot = self.map.read().unwrap().get(name).cloned()?;
        let old = std::mem::replace(&mut *slot.op.write().unwrap(), op);
        slot.updates.fetch_add(1, Ordering::Relaxed);
        Some(old)
    }

    /// Clone-apply-swap update of a registered operator: clones the current
    /// operator, runs `f` on the private clone, and — only if `f` returns
    /// `Ok` — swaps the clone in and bumps the slot's update count. Readers
    /// holding the previous `Arc` are unaffected; a failed closure leaves
    /// the registry exactly as it was. Returns `None` for an unknown name,
    /// otherwise `f`'s result alongside the newly installed handle.
    pub fn update_with<R, E>(
        &self,
        name: &str,
        f: impl FnOnce(&mut H2MatrixS<S>) -> Result<R, E>,
    ) -> Option<UpdateOutcome<S, R, E>> {
        let slot = self.map.read().unwrap().get(name).cloned()?;
        let _serialized = slot.update_lock.lock().unwrap();
        let mut work = (*slot.current()).clone();
        Some(match f(&mut work) {
            Ok(r) => {
                let fresh = Arc::new(work);
                *slot.op.write().unwrap() = fresh.clone();
                slot.updates.fetch_add(1, Ordering::Relaxed);
                Ok((fresh, r))
            }
            Err(e) => Err(e),
        })
    }

    /// How many swap/update operations `name`'s slot has absorbed since it
    /// was inserted (`None` for an unknown name).
    pub fn update_count(&self, name: &str) -> Option<u64> {
        self.map
            .read()
            .unwrap()
            .get(name)
            .map(|v| v.updates.load(Ordering::Relaxed))
    }

    /// Removes and returns the named operator.
    pub fn remove(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map
            .write()
            .unwrap()
            .remove(name)
            .map(|old| old.current())
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }

    /// Loads an operator file (see [`crate::codec::load`]) and registers it
    /// under `name`, returning the shared handle.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        self.load_file_with_budget(name, path, kernel, CacheBudget::Off)
    }

    /// Like [`Self::load_file`], but installs a per-operator block-cache
    /// budget before the operator is frozen behind its `Arc` (files never
    /// persist a cache — it is a runtime tier). The budget only takes
    /// effect for on-the-fly operators; normal-mode files ignore it.
    pub fn load_file_with_budget(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
        budget: CacheBudget,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        let mut op = crate::codec::load::<S>(path, kernel)?;
        if !budget.is_off() {
            op.set_cache_budget(budget);
        }
        let op = Arc::new(op);
        self.insert(name, op.clone());
        Ok(op)
    }

    /// Loads an operator file by `mmap` (see [`crate::codec::load_mmap`])
    /// and registers it under `name`. For v4 files the operator's matrix
    /// payloads stay on the mapped pages — near-zero resident bytes at
    /// load, surfaced per entry as `h2_registry_operator_mapped_bytes` —
    /// while behaving bitwise-identically to [`Self::load_file`].
    pub fn load_file_mmap(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        self.load_file_mmap_with_budget(name, path, kernel, CacheBudget::Off)
    }

    /// Like [`Self::load_file_mmap`] with a per-operator block-cache budget
    /// (only meaningful for on-the-fly operators, as with
    /// [`Self::load_file_with_budget`]).
    pub fn load_file_mmap_with_budget(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
        budget: CacheBudget,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        let mut op = crate::codec::load_mmap::<S>(path, kernel)?;
        if !budget.is_off() {
            op.set_cache_budget(budget);
        }
        let op = Arc::new(op);
        self.insert(name, op.clone());
        Ok(op)
    }

    /// Resident bytes per registry entry, sorted by name: the operator's
    /// exact logical footprint (`memory_report().total()`, which includes
    /// any cached-tier blocks) next to the cached-tier share alone, plus
    /// the builder provenance the operator was constructed with. This is
    /// what `h2serve metrics` reports per entry.
    pub fn resident_bytes(&self) -> Vec<RegistryEntryBytes> {
        let mut v: Vec<RegistryEntryBytes> = self
            .map
            .read()
            .unwrap()
            .iter()
            .map(|(name, slot)| {
                let op = slot.current();
                let report = op.memory_report();
                RegistryEntryBytes {
                    name: name.clone(),
                    total_bytes: report.total(),
                    cached_bytes: report.cached_blocks,
                    mapped_bytes: report.mapped_bytes,
                    builder: op.provenance(),
                    epoch: op.epoch(),
                    updates: slot.updates.load(Ordering::Relaxed),
                }
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Per-entry resident bytes in the Prometheus text exposition format
    /// (one `operator`-labeled gauge sample per entry and series). The
    /// builder-provenance series is an info-style gauge: constant 1, with
    /// the provenance in the `builder` label. Registry names are
    /// caller-chosen strings, so label values are escaped per the
    /// exposition format (`escape_label`) — a hostile name cannot break
    /// out of its label or forge extra samples.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.resident_bytes();
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE h2_registry_operator_resident_bytes gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_resident_bytes{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.total_bytes
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_cached_bytes gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_cached_bytes{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.cached_bytes
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_mapped_bytes gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_mapped_bytes{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.mapped_bytes
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_builder gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_builder{{operator=\"{}\",builder=\"{}\",code=\"{}\"}} 1",
                escape_label(&e.name),
                escape_label(e.builder.name()),
                e.builder.code()
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_epoch gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_epoch{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.epoch
            );
        }
        let _ = writeln!(out, "# TYPE h2_registry_operator_updates gauge");
        for e in &entries {
            let _ = writeln!(
                out,
                "h2_registry_operator_updates{{operator=\"{}\"}} {}",
                escape_label(&e.name),
                e.updates
            );
        }
        out
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// are the three characters the text exposition format requires escaping
/// inside `label="…"`. Shared with the per-tenant series in `service`.
pub(crate) fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One row of [`OperatorRegistry::resident_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntryBytes {
    /// Registry name of the operator.
    pub name: String,
    /// Exact logical footprint in bytes (tree, generators, blocks, cache).
    pub total_bytes: usize,
    /// Bytes held by the budgeted cache tier (0 without a cache).
    pub cached_bytes: usize,
    /// Bytes served from `mmap`ed operator-file pages (0 for owned loads).
    /// These live in the OS page cache, not this process's heap, so they
    /// are *excluded* from `total_bytes`.
    pub mapped_bytes: usize,
    /// Construction pipeline the operator came from (persisted through the
    /// codec's provenance byte; unknown codes surface as `unknown`).
    pub builder: h2_core::BuilderProvenance,
    /// The operator's own update epoch (`H2MatrixS::epoch`): how many
    /// incremental update batches the operator has absorbed over its life,
    /// including before it was saved/loaded.
    pub epoch: u64,
    /// Swap/update operations this registry slot has absorbed since
    /// insertion (resets on [`OperatorRegistry::insert`], not on load).
    pub updates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
    use h2_kernels::Coulomb;
    use h2_points::gen;

    fn tiny() -> Arc<H2Matrix> {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
    }

    #[test]
    fn insert_get_remove() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        assert!(reg.is_empty());
        let op = tiny();
        assert!(reg.insert("a", op.clone()).is_none());
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &op));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        let replaced = reg.insert("a", tiny());
        assert!(replaced.is_some_and(|r| Arc::ptr_eq(&r, &op)));
        assert!(reg.remove("a").is_some());
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn update_with_swaps_atomically_and_in_flight_handles_survive() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        reg.insert("live", tiny());
        assert_eq!(reg.update_count("live"), Some(0));
        // An "in-flight sweep": a handle taken before the update.
        let before = reg.get("live").unwrap();
        let b = vec![1.0; before.n()];
        let y_before = before.matvec(&b);
        let extra = h2_points::PointSet::new(2, vec![0.41, 0.43, 0.51, 0.53]);
        let (after, report) = reg
            .update_with("live", |op| op.insert_points(&extra))
            .expect("name is registered")
            .expect("insert succeeds");
        assert_eq!(report.inserted, 2);
        assert_eq!(after.epoch(), 1);
        assert_eq!(reg.update_count("live"), Some(1));
        // New submissions see the new epoch; the old handle is untouched
        // and still applies on the operator it started with.
        assert!(Arc::ptr_eq(&reg.get("live").unwrap(), &after));
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.matvec(&b), y_before);
        assert_eq!(after.n(), before.n() + 2);
        // Epoch and update-count gauges appear per entry.
        let rows = reg.resident_bytes();
        assert_eq!(rows[0].epoch, 1);
        assert_eq!(rows[0].updates, 1);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE h2_registry_operator_epoch gauge\n"));
        assert!(text.contains("h2_registry_operator_epoch{operator=\"live\"} 1\n"));
        assert!(text.contains("h2_registry_operator_updates{operator=\"live\"} 1\n"));
    }

    #[test]
    fn failed_update_leaves_registry_untouched() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        reg.insert("live", tiny());
        let before = reg.get("live").unwrap();
        // Wrong dimension: the update closure fails before any mutation.
        let bad = h2_points::PointSet::new(3, vec![0.1, 0.2, 0.3]);
        let err = reg
            .update_with("live", |op| op.insert_points(&bad))
            .expect("name is registered")
            .err()
            .expect("dimension mismatch must fail");
        assert!(matches!(
            err,
            h2_core::UpdateError::DimMismatch {
                expected: 2,
                got: 3
            }
        ));
        assert!(Arc::ptr_eq(&reg.get("live").unwrap(), &before));
        assert_eq!(reg.update_count("live"), Some(0));
        // Unknown names: None without registering anything.
        assert!(reg
            .update_with("ghost", |op| op.insert_points(&bad))
            .is_none());
        assert!(reg.swap("ghost", tiny()).is_none());
        assert!(reg.update_count("ghost").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn swap_replaces_in_slot_and_counts() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let first = tiny();
        reg.insert("op", first.clone());
        let second = tiny();
        let old = reg.swap("op", second.clone()).expect("slot exists");
        assert!(Arc::ptr_eq(&old, &first));
        assert!(Arc::ptr_eq(&reg.get("op").unwrap(), &second));
        assert_eq!(reg.update_count("op"), Some(1));
        // A fresh insert resets the slot and its count.
        reg.insert("op", tiny());
        assert_eq!(reg.update_count("op"), Some(0));
    }

    #[test]
    fn load_file_registers() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let loaded = reg.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        std::fs::remove_file(&path).ok();
        let b = vec![1.0; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        assert!(reg.get("disk").is_some());
    }

    #[test]
    fn resident_bytes_reports_every_entry() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let a = tiny();
        let b = tiny();
        reg.insert("beta", b.clone());
        reg.insert("alpha", a.clone());
        let rows = reg.resident_bytes();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alpha");
        assert_eq!(rows[1].name, "beta");
        assert_eq!(rows[0].total_bytes, a.memory_report().total());
        assert_eq!(rows[0].cached_bytes, 0, "no budget, no cached tier");
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE h2_registry_operator_resident_bytes gauge\n"));
        assert!(text.contains(&format!(
            "h2_registry_operator_resident_bytes{{operator=\"alpha\"}} {}\n",
            rows[0].total_bytes
        )));
        assert!(text.contains("h2_registry_operator_cached_bytes{operator=\"beta\"} 0\n"));
        assert_eq!(rows[0].builder, h2_core::BuilderProvenance::AnchorNet);
        assert!(text.contains(
            "h2_registry_operator_builder{operator=\"alpha\",builder=\"anchor-net\",code=\"0\"} 1\n"
        ));
    }

    #[test]
    fn hostile_operator_names_are_escaped_in_labels() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        // A name abusing every character the exposition format escapes: a
        // quote to break out of the label, a newline to forge a sample
        // line, and a backslash to defuse a naive quote-escaper.
        reg.insert("evil\"} 1\nforged_metric 42\\", op);
        let text = reg.prometheus_text();
        // Golden: the whole hostile name stays inside one quoted label.
        assert!(
            text.contains(
                "h2_registry_operator_cached_bytes{operator=\"evil\\\"} 1\\nforged_metric 42\\\\\"} 0\n"
            ),
            "escaped label not found in:\n{text}"
        );
        assert!(
            !text.contains("\nforged_metric"),
            "a raw newline in a name forged a sample line:\n{text}"
        );
        // Every line is still well-formed: a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("h2_registry_"),
                "malformed exposition line: {line}"
            );
        }
        assert_eq!(escape_label("plain-name_0"), "plain-name_0");
    }

    #[test]
    fn registry_surfaces_sketched_provenance() {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            builder: h2_core::BuilderStrategy::sketched_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            seed: 9,
            ..H2Config::default()
        };
        let op = Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg));
        let reg: OperatorRegistry = OperatorRegistry::new();
        reg.insert("rand", op);
        let rows = reg.resident_bytes();
        assert_eq!(rows[0].builder, h2_core::BuilderProvenance::Sketched);
        assert!(reg.prometheus_text().contains(
            "h2_registry_operator_builder{operator=\"rand\",builder=\"sketched\",code=\"1\"} 1\n"
        ));
    }

    #[test]
    fn load_file_with_budget_installs_a_per_operator_cache() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_budget_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let cached = reg
            .load_file_with_budget("warm", &path, Arc::new(Coulomb), CacheBudget::Ratio(0.5))
            .unwrap();
        let cold = reg
            .load_file_with_budget("cold", &path, Arc::new(Coulomb), CacheBudget::Off)
            .unwrap();
        std::fs::remove_file(&path).ok();
        let stats = cached.cache_stats().expect("budget installs a cache");
        assert!(stats.budget_bytes > 0);
        assert!(stats.resident_bytes > 0);
        assert!(cold.cache_stats().is_none());
        // The cached tier applies normal-mode arithmetic (bitwise identical
        // to a materialized build, not to the fused on-the-fly summation
        // order), so the two loads agree to rounding, and the registry's
        // per-entry report sees the cached bytes.
        let b = vec![1.0; op.n()];
        let err = h2_linalg::vec_ops::rel_err(&cached.matvec(&b), &cold.matvec(&b));
        assert!(err < 1e-12, "cached vs uncached load rel err {err}");
        let rows = reg.resident_bytes();
        let warm = rows.iter().find(|r| r.name == "warm").unwrap();
        let cold_row = rows.iter().find(|r| r.name == "cold").unwrap();
        assert_eq!(warm.cached_bytes, stats.resident_bytes);
        assert_eq!(cold_row.cached_bytes, 0);
        assert!(warm.total_bytes > cold_row.total_bytes);
    }

    #[test]
    fn load_file_mmap_registers_with_near_zero_resident_bytes() {
        // Normal mode so dense blocks dominate the owned footprint.
        let pts = gen::uniform_cube(300, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::Normal,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        let op = Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg));
        let path = std::env::temp_dir().join("h2serve_registry_mmap_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let reg: OperatorRegistry = OperatorRegistry::new();
        let owned = reg.load_file("owned", &path, Arc::new(Coulomb)).unwrap();
        let mapped = reg
            .load_file_mmap("mapped", &path, Arc::new(Coulomb))
            .unwrap();
        std::fs::remove_file(&path).ok();
        let b: Vec<f64> = (0..op.n()).map(|i| (0.17 * i as f64).sin()).collect();
        assert_eq!(owned.matvec(&b), mapped.matvec(&b), "mmap must be bitwise");
        let rows = reg.resident_bytes();
        let o = rows.iter().find(|r| r.name == "owned").unwrap();
        let m = rows.iter().find(|r| r.name == "mapped").unwrap();
        assert_eq!(o.mapped_bytes, 0);
        assert!(m.mapped_bytes > 0);
        assert!(
            (m.total_bytes as f64) < 0.5 * o.total_bytes as f64,
            "mapped slot resident {} vs owned {}",
            m.total_bytes,
            o.total_bytes
        );
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE h2_registry_operator_mapped_bytes gauge\n"));
        assert!(text.contains(&format!(
            "h2_registry_operator_mapped_bytes{{operator=\"mapped\"}} {}\n",
            m.mapped_bytes
        )));
        assert!(text.contains("h2_registry_operator_mapped_bytes{operator=\"owned\"} 0\n"));
    }

    #[test]
    fn f32_registry_round_trips_and_rejects_f64_files() {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        let op = Arc::new(H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg));
        let path = std::env::temp_dir().join("h2serve_registry_f32_test.h2op");
        crate::codec::save(op.as_ref(), &path).unwrap();
        let reg32: OperatorRegistry<f32> = OperatorRegistry::new();
        let loaded = reg32.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        let b = vec![1.0f32; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        // The f64 registry refuses the same file with the typed error.
        let reg64: OperatorRegistry = OperatorRegistry::new();
        let err = reg64
            .load_file("disk", &path, Arc::new(Coulomb))
            .err()
            .expect("width mismatch must fail");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            LoadError::PrecisionMismatch {
                stored: "f32",
                requested: "f64",
            }
        ));
    }
}
