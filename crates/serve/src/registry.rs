//! Named registry of shared, immutable H² operators.
//!
//! Operators are expensive to build and cheap to share: the registry hands
//! out `Arc<H2MatrixS<S>>` clones so any number of services/threads can
//! apply the same operator concurrently (the matvec is `&self`). The
//! registry is homogeneous in the storage scalar `S` (default `f64`): a
//! deployment serving both widths keeps one `OperatorRegistry<f64>` and one
//! `OperatorRegistry<f32>`, dispatching on [`crate::codec::stored_scalar`].

use crate::error::LoadError;
use h2_core::H2MatrixS;
use h2_kernels::Kernel;
use h2_linalg::Scalar;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A concurrent name → operator map over storage scalar `S`.
#[derive(Default)]
pub struct OperatorRegistry<S: Scalar = f64> {
    map: RwLock<HashMap<String, Arc<H2MatrixS<S>>>>,
}

impl<S: Scalar> OperatorRegistry<S> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `op` under `name`, returning the operator it replaced (if
    /// any).
    pub fn insert(
        &self,
        name: impl Into<String>,
        op: Arc<H2MatrixS<S>>,
    ) -> Option<Arc<H2MatrixS<S>>> {
        self.map.write().unwrap().insert(name.into(), op)
    }

    /// Looks up an operator by name.
    pub fn get(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Removes and returns the named operator.
    pub fn remove(&self, name: &str) -> Option<Arc<H2MatrixS<S>>> {
        self.map.write().unwrap().remove(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }

    /// Loads an operator file (see [`crate::codec::load`]) and registers it
    /// under `name`, returning the shared handle.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        kernel: Arc<dyn Kernel>,
    ) -> Result<Arc<H2MatrixS<S>>, LoadError> {
        let op = Arc::new(crate::codec::load::<S>(path, kernel)?);
        self.insert(name, op.clone());
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2Matrix, MemoryMode};
    use h2_kernels::Coulomb;
    use h2_points::gen;

    fn tiny() -> Arc<H2Matrix> {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        Arc::new(H2Matrix::build(&pts, Arc::new(Coulomb), &cfg))
    }

    #[test]
    fn insert_get_remove() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        assert!(reg.is_empty());
        let op = tiny();
        assert!(reg.insert("a", op.clone()).is_none());
        assert!(Arc::ptr_eq(&reg.get("a").unwrap(), &op));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        let replaced = reg.insert("a", tiny());
        assert!(replaced.is_some_and(|r| Arc::ptr_eq(&r, &op)));
        assert!(reg.remove("a").is_some());
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn load_file_registers() {
        let reg: OperatorRegistry = OperatorRegistry::new();
        let op = tiny();
        let path = std::env::temp_dir().join("h2serve_registry_test.h2op");
        crate::codec::save(&op, &path).unwrap();
        let loaded = reg.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        std::fs::remove_file(&path).ok();
        let b = vec![1.0; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        assert!(reg.get("disk").is_some());
    }

    #[test]
    fn f32_registry_round_trips_and_rejects_f64_files() {
        let pts = gen::uniform_cube(200, 2, 1);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 2),
            mode: MemoryMode::OnTheFly,
            leaf_size: 32,
            eta: 0.7,
            ..H2Config::default()
        };
        let op = Arc::new(H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg));
        let path = std::env::temp_dir().join("h2serve_registry_f32_test.h2op");
        crate::codec::save(op.as_ref(), &path).unwrap();
        let reg32: OperatorRegistry<f32> = OperatorRegistry::new();
        let loaded = reg32.load_file("disk", &path, Arc::new(Coulomb)).unwrap();
        let b = vec![1.0f32; op.n()];
        assert_eq!(op.matvec(&b), loaded.matvec(&b));
        // The f64 registry refuses the same file with the typed error.
        let reg64: OperatorRegistry = OperatorRegistry::new();
        let err = reg64
            .load_file("disk", &path, Arc::new(Coulomb))
            .err()
            .expect("width mismatch must fail");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            LoadError::PrecisionMismatch {
                stored: "f32",
                requested: "f64",
            }
        ));
    }
}
