//! Operator serving CLI: build H² operators, persist them, load/verify the
//! files, and benchmark the batched matvec service.
//!
//! ```text
//! h2serve build        [build flags]              construct and report stats
//! h2serve save         [build flags] --out FILE   construct and persist
//! h2serve load         --file FILE [--kernel K]   load, validate, time a matvec
//! h2serve serve-bench  (--file FILE | build flags) [--requests R] [--batches 1,4,16]
//! h2serve metrics      (--file FILE | build flags) [--requests R] [--batches K]
//! h2serve serve        --file FILE --shards N [--requests R] [--batches K]
//!                      [--metrics-addr ADDR] [--trace FILE] [--flight-dir DIR]
//!                      [--duration-s S]
//! h2serve serve        --file FILE --tenants FILE [--mmap] [--requests R]
//!                      [--batches K] [--cache-budget B] [--metrics-addr ADDR]
//! h2serve shard-worker --file FILE --rank R --shards N --connect ADDR
//! h2serve update       --file FILE [--updates U] [--points P] [--out FILE]
//! ```
//!
//! `update` exercises the dynamic-operator path end to end: it loads the
//! file into a versioned registry slot, then alternates serving matvecs
//! with `update_with` batches (insert `--points` fresh points, remove as
//! many old ones) for `--updates` rounds. Each round verifies the swap
//! protocol — a handle taken before the update still applies bit-identically
//! on the epoch it started on, while post-swap submissions see the bumped
//! epoch — and samples the updated operator's relative error against exact
//! kernel rows. `--out` persists the final operator, epoch included.
//!
//! `serve` stands up a multi-process deployment: it binds a coordinator,
//! spawns `N` `shard-worker` child processes of this same binary (each
//! loads the operator file and serves one shard of the distributed
//! five-sweep matvec over TCP), runs a serving workload through the
//! batched `MatvecService`, checks the distributed results bit-for-bit
//! against the local operator, and drains the workers. `shard-worker` is
//! the child half; it can also be started by hand on other machines
//! against a coordinator that admits external workers.
//!
//! `serve --tenants` is the multi-tenant hosting mode instead: it parses a
//! tenant policy file (`[name]` sections with `weight` / `max_queue` /
//! `cache_share` / `admission` keys), registers one operator per tenant —
//! `--mmap` loads each through the zero-copy v4 path, so N tenants cost
//! page-cache sharing rather than N owned decodes — verifies every hosted
//! operator applies bit-identically to the owned decode, partitions
//! `--cache-budget` across tenants by their `cache_share`, and serves a
//! round-robin workload through one weighted-deficit-round-robin
//! `MatvecService`, reporting per-tenant latency quantiles and the
//! `h2_tenant_*` / registry gauge series.
//!
//! `serve` carries the observability plane: `--metrics-addr ADDR` serves
//! live `GET /metrics` + `GET /healthz` while traffic flows,
//! `--trace FILE` merges coordinator and worker spans into one
//! chrome://tracing JSON (one pid per rank, worker clocks offset-corrected
//! from the handshake), `--flight-dir DIR` arms the per-process crash
//! flight recorder, and `--duration-s S` sustains traffic past the
//! verified workload so a scraper has something to watch.
//!
//! `metrics` runs one serving workload (batch cap = first `--batches`
//! entry) and prints a Prometheus text exposition to stdout: the service's
//! latency/throughput series followed by the process-wide telemetry
//! registry (kernel-eval and block-generation counters, span aggregates).
//!
//! Build flags: `--n N --dim D --tol T --mode normal|otf --kernel NAME
//! --builder anchor|sketched --method dd|interp|proxy --leaf L --eta E
//! --seed S --precision f64|f32|mixed --cache-budget off|BYTES|RATIO|full`.
//!
//! `--builder sketched` switches construction to the randomized sketched
//! pipeline (`h2-sketch`): farfield sampling + mixing + adaptive-rank row
//! ID, seeded by `--seed` for bit-reproducible builds. `--method` only
//! applies to the default anchor-net builder. The chosen builder is
//! persisted in the file header as a provenance byte and surfaced by
//! `load`, `metrics`, and the registry — unknown provenance codes are
//! reported, never rejected.
//!
//! `--cache-budget` installs the budgeted block-cache tier (see `h2-cache`)
//! on on-the-fly operators — both built ones and loaded files (the codec
//! never persists a cache; it is reinstalled at load time). Budgets accept
//! `off`, absolute bytes (`64m`), a fraction of the full block footprint
//! (`0.25` / `25%`), or `full`.
//!
//! `--precision` selects the storage/accumulation mode: `f64` (default),
//! `f32` (single-precision storage and sweeps), or `mixed` (`f32` storage,
//! `f64` accumulation). `save` writes the storage scalar into the file
//! header; `load` and `serve-bench --file` dispatch on the stored scalar
//! (an `f32` file is served in the mode `--precision` requests, never
//! silently widened into an `f64` operator).

use h2_cache::split_budget;
use h2_core::H2Operator;
use h2_core::{
    AnyH2, BasisMethod, BuilderStrategy, CacheBudget, H2Config, H2MatrixS, MemoryMode, MixedH2,
    Precision,
};
use h2_kernels::{kernel_by_name, Kernel};
use h2_linalg::Scalar;
use h2_net::{run_worker, BoundCoordinator, NetConfig, NetError, ShardCoordinator};
use h2_points::gen;
use h2_serve::{
    codec, LoadError, MatvecService, MetricsServer, OperatorRegistry, QueueMode, TenantTable,
};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

struct Opts {
    n: usize,
    dim: usize,
    tol: f64,
    mode: MemoryMode,
    kernel: String,
    builder: String,
    method: String,
    leaf: usize,
    eta: f64,
    seed: u64,
    out: Option<String>,
    file: Option<String>,
    requests: usize,
    batches: Vec<usize>,
    precision: Precision,
    cache_budget: CacheBudget,
    shards: usize,
    rank: usize,
    connect: Option<String>,
    io_timeout_ms: Option<u64>,
    metrics_addr: Option<String>,
    trace_out: Option<String>,
    flight_dir: Option<String>,
    duration_s: u64,
    updates: usize,
    points: usize,
    tenants: Option<String>,
    mmap: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 5000,
            dim: 3,
            tol: 1e-6,
            mode: MemoryMode::OnTheFly,
            kernel: "coulomb".into(),
            builder: "anchor".into(),
            method: "dd".into(),
            leaf: 128,
            eta: 0.7,
            seed: 1,
            out: None,
            file: None,
            requests: 64,
            batches: vec![1, 2, 4, 8, 16],
            precision: Precision::F64,
            cache_budget: CacheBudget::Off,
            shards: 0,
            rank: 0,
            connect: None,
            io_timeout_ms: None,
            metrics_addr: None,
            trace_out: None,
            flight_dir: None,
            duration_s: 0,
            updates: 4,
            points: 8,
            tenants: None,
            mmap: false,
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: h2serve <build|save|load|serve-bench|metrics|serve|shard-worker|update> \
         [--n N] [--dim D] [--tol T] [--mode normal|otf] [--kernel NAME] \
         [--builder anchor|sketched] [--method dd|interp|proxy] \
         [--leaf L] [--eta E] [--seed S] \
         [--out FILE] [--file FILE] [--requests R] [--batches a,b,c] \
         [--precision f64|f32|mixed] [--cache-budget off|BYTES|RATIO|full] \
         [--shards N] [--rank R] [--connect ADDR] [--io-timeout-ms MS] \
         [--metrics-addr ADDR] [--trace FILE] [--flight-dir DIR] [--duration-s S] \
         [--updates U] [--points P] [--tenants FILE] [--mmap]"
    );
    exit(if msg.is_empty() { 0 } else { 2 });
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{a} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--n" => o.n = val().parse().unwrap_or_else(|_| usage("bad --n")),
            "--dim" => o.dim = val().parse().unwrap_or_else(|_| usage("bad --dim")),
            "--tol" => o.tol = val().parse().unwrap_or_else(|_| usage("bad --tol")),
            "--mode" => o.mode = MemoryMode::parse(&val()).unwrap_or_else(|| usage("bad --mode")),
            "--kernel" => o.kernel = val(),
            "--builder" => o.builder = val(),
            "--method" => o.method = val(),
            "--leaf" => o.leaf = val().parse().unwrap_or_else(|_| usage("bad --leaf")),
            "--eta" => o.eta = val().parse().unwrap_or_else(|_| usage("bad --eta")),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--out" => o.out = Some(val()),
            "--file" => o.file = Some(val()),
            "--requests" => o.requests = val().parse().unwrap_or_else(|_| usage("bad --requests")),
            "--precision" => {
                o.precision = Precision::parse(&val()).unwrap_or_else(|| usage("bad --precision"))
            }
            "--cache-budget" => {
                o.cache_budget =
                    CacheBudget::parse(&val()).unwrap_or_else(|| usage("bad --cache-budget"))
            }
            "--batches" => {
                o.batches = val()
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage("bad --batches")))
                    .collect()
            }
            "--shards" => o.shards = val().parse().unwrap_or_else(|_| usage("bad --shards")),
            "--rank" => o.rank = val().parse().unwrap_or_else(|_| usage("bad --rank")),
            "--connect" => o.connect = Some(val()),
            "--io-timeout-ms" => {
                o.io_timeout_ms = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|_| usage("bad --io-timeout-ms")),
                )
            }
            "--metrics-addr" => o.metrics_addr = Some(val()),
            "--trace" => o.trace_out = Some(val()),
            "--flight-dir" => o.flight_dir = Some(val()),
            "--duration-s" => {
                o.duration_s = val().parse().unwrap_or_else(|_| usage("bad --duration-s"))
            }
            "--updates" => o.updates = val().parse().unwrap_or_else(|_| usage("bad --updates")),
            "--points" => o.points = val().parse().unwrap_or_else(|_| usage("bad --points")),
            "--tenants" => o.tenants = Some(val()),
            "--mmap" => o.mmap = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if o.n == 0 {
        usage("--n must be at least 1");
    }
    if o.leaf == 0 {
        usage("--leaf must be at least 1");
    }
    if o.batches.contains(&0) || o.batches.is_empty() {
        usage("--batches entries must be at least 1");
    }
    o
}

fn make_kernel(name: &str) -> Arc<dyn Kernel> {
    kernel_by_name(name)
        .unwrap_or_else(|| usage(&format!("unknown kernel '{name}'")))
        .into()
}

fn config_for(o: &Opts) -> H2Config {
    let basis = match o.method.as_str() {
        "dd" | "data-driven" => BasisMethod::data_driven_for_tol(o.tol, o.dim),
        "interp" | "interpolation" => BasisMethod::interpolation_for_tol(o.tol, o.dim),
        "proxy" | "proxy-surface" => BasisMethod::proxy_surface_for_tol(o.tol, o.dim),
        m => usage(&format!("unknown method '{m}'")),
    };
    let builder = match o.builder.as_str() {
        "anchor" | "anchor-net" => BuilderStrategy::AnchorNet,
        "sketched" | "sketch" => BuilderStrategy::sketched_for_tol(o.tol, o.dim),
        b => usage(&format!("unknown builder '{b}'")),
    };
    H2Config {
        basis,
        builder,
        mode: o.mode,
        leaf_size: o.leaf,
        eta: o.eta,
        seed: o.seed,
        precision: o.precision,
        cache_budget: o.cache_budget,
    }
}

fn build_operator(o: &Opts) -> (Arc<dyn Kernel>, AnyH2) {
    let kernel = make_kernel(&o.kernel);
    let cfg = config_for(o);
    let pts = gen::uniform_cube(o.n, o.dim, o.seed);
    let h2 = AnyH2::build(&pts, kernel.clone(), &cfg);
    (kernel, h2)
}

fn report<S: Scalar>(h2: &H2MatrixS<S>) {
    let s = h2.stats();
    let mem = h2.memory_report();
    println!(
        "operator: n={} dim={} mode={} kernel={} scalar={} builder={}",
        h2.n(),
        h2.dim(),
        h2.mode().name(),
        h2.kernel().name(),
        S::NAME,
        h2.provenance().name()
    );
    println!(
        "build: total {:.1} ms (tree {:.1}, lists {:.1}, sampling {:.1}, basis {:.1}, blocks {:.1})",
        s.total_ms, s.tree_ms, s.lists_ms, s.sampling_ms, s.basis_ms, s.blocks_ms
    );
    if s.sketch_samples > 0 {
        println!(
            "sketch: {} sampled entries, {} probe entries, {} rank retries, {} max rounds",
            s.sketch_samples, s.sketch_probes, s.sketch_retries, s.sketch_max_rounds
        );
    }
    println!(
        "memory: generators {:.1} KiB, total {:.1} KiB, max rank {}",
        mem.generators() as f64 / 1024.0,
        mem.total() as f64 / 1024.0,
        h2.ranks().iter().copied().max().unwrap_or(0)
    );
}

fn report_any(op: &AnyH2) {
    match op {
        AnyH2::F64(h) => report(h.as_ref()),
        AnyH2::F32(h) => report(h.as_ref()),
        AnyH2::Mixed(m) => report(m.inner().as_ref()),
    }
    println!("precision: {}", op.precision().name());
    if let Some(c) = op.cache_stats() {
        println!(
            "cache: budget {:.1} KiB, resident {:.1} KiB ({} blocks, {:.1} KiB pinned)",
            c.budget_bytes as f64 / 1024.0,
            c.resident_bytes as f64 / 1024.0,
            c.entries,
            c.pinned_bytes as f64 / 1024.0
        );
    }
}

/// Times one `f64`-interface matvec and samples its relative error against
/// exact kernel rows, whatever precision mode `op` runs in.
fn check_and_time(op: &AnyH2, seed: u64) {
    let b = h2_core::error_est::probe_vector(op.n(), seed ^ 0xC0FFEE);
    let t = Instant::now();
    let y = op.matvec(&b);
    let mv_ms = t.elapsed().as_secs_f64() * 1e3;
    let err = match op {
        AnyH2::F64(h) => h.estimate_rel_error(&b, &y, 12, seed),
        AnyH2::F32(h) => {
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let y32: Vec<f32> = y.iter().map(|&v| v as f32).collect();
            h.estimate_rel_error(&b32, &y32, 12, seed) as f64
        }
        AnyH2::Mixed(m) => m.inner().estimate_rel_error(&b, &y, 12, seed),
    };
    println!("matvec: {mv_ms:.2} ms, sampled relative error {err:.2e}");
}

fn cmd_build(o: &Opts) {
    let (_, h2) = build_operator(o);
    report_any(&h2);
    check_and_time(&h2, o.seed);
}

fn cmd_save(o: &Opts) {
    let Some(out) = &o.out else {
        usage("save needs --out FILE");
    };
    let (_, h2) = build_operator(o);
    report_any(&h2);
    let t = Instant::now();
    // The file records the storage scalar; mixed mode stores f32 and is
    // re-selected with `--precision mixed` at load time.
    let saved = match &h2 {
        AnyH2::F64(h) => codec::save(h.as_ref(), out),
        AnyH2::F32(h) => codec::save(h.as_ref(), out),
        AnyH2::Mixed(m) => codec::save(m.inner().as_ref(), out),
    };
    match saved {
        Ok(bytes) => println!(
            "saved {out}: {:.1} KiB in {:.1} ms",
            bytes as f64 / 1024.0,
            t.elapsed().as_secs_f64() * 1e3
        ),
        Err(e) => {
            eprintln!("save failed: {e}");
            exit(1);
        }
    }
}

/// Loads `file` into the precision mode `o.precision` requests, dispatching
/// on the scalar recorded in the header. An `f32` file loads as a pure-`f32`
/// operator under `--precision f32` and as mixed (`f64` accumulation)
/// otherwise; requesting `--precision f32`/`mixed` for an `f64` file is a
/// precision mismatch, not a silent conversion.
fn load_any(
    file: &str,
    kernel: Arc<dyn Kernel>,
    precision: Precision,
    budget: CacheBudget,
) -> Result<AnyH2, LoadError> {
    let bytes = std::fs::read(file)?;
    // Files never persist a cache; the budget tier is reinstalled here,
    // before the operator is frozen behind its Arc.
    match codec::stored_scalar(&bytes)? {
        "f64" if precision == Precision::F64 => {
            let mut h2 = codec::decode::<f64>(&bytes, kernel)?;
            h2.set_cache_budget(budget);
            Ok(AnyH2::F64(Arc::new(h2)))
        }
        "f32" => {
            let mut h2 = codec::decode::<f32>(&bytes, kernel)?;
            h2.set_cache_budget(budget);
            let h2 = Arc::new(h2);
            Ok(match precision {
                Precision::F32 => AnyH2::F32(h2),
                _ => AnyH2::Mixed(MixedH2::new(h2)),
            })
        }
        stored => Err(LoadError::PrecisionMismatch {
            stored: if stored == "f64" { "f64" } else { "f32" },
            requested: precision.name(),
        }),
    }
}

fn cmd_load(o: &Opts) {
    let Some(file) = &o.file else {
        usage("load needs --file FILE");
    };
    let kernel = make_kernel(&o.kernel);
    let t = Instant::now();
    match load_any(file, kernel, o.precision, o.cache_budget) {
        Ok(h2) => {
            println!("loaded {file} in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
            report_any(&h2);
            check_and_time(&h2, o.seed);
        }
        Err(e) => {
            eprintln!("load failed: {e}");
            exit(1);
        }
    }
}

/// Loads the operator from `--file` or builds one from the build flags.
fn load_or_build(o: &Opts) -> Arc<AnyH2> {
    Arc::new(match &o.file {
        Some(file) => match load_any(file, make_kernel(&o.kernel), o.precision, o.cache_budget) {
            Ok(h2) => h2,
            Err(e) => {
                eprintln!("load failed: {e}");
                exit(1);
            }
        },
        None => build_operator(o).1,
    })
}

/// Submits `requests` probe vectors to `svc` and drains them all.
fn run_workload(svc: &MatvecService<AnyH2>, requests: usize, seed: u64) -> h2_serve::DrainReport {
    let tickets: Vec<_> = (0..requests)
        .map(|s| {
            let b = h2_core::error_est::probe_vector(svc.operator().n(), seed ^ (s as u64) << 8);
            svc.submit(b).expect("length checked at build")
        })
        .collect();
    let rep = svc.drain();
    for t in tickets {
        if let Err(e) = t.wait() {
            eprintln!("request failed: {e}");
            exit(1);
        }
    }
    rep
}

fn cmd_serve_bench(o: &Opts) {
    let op = load_or_build(o);
    report_any(&op);
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "batch", "sweeps", "p50 us", "p99 us", "busy ms", "req/s"
    );
    for &k in &o.batches {
        let svc = MatvecService::new(op.clone(), k.max(1));
        let rep = run_workload(&svc, o.requests, o.seed);
        let m = svc.metrics();
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>12.2} {:>12.0}",
            k, rep.sweeps, m.p50_latency_us, m.p99_latency_us, m.busy_ms, m.throughput_rps
        );
    }
}

/// Registers `op` in a registry of its storage width and returns the
/// per-entry resident-byte gauges, so `metrics` reports the bytes each
/// registry entry holds (operator footprint and cached-tier share).
fn registry_text(op: &Arc<AnyH2>, name: &str) -> String {
    match op.as_ref() {
        AnyH2::F64(h) => {
            let reg: OperatorRegistry<f64> = OperatorRegistry::new();
            reg.insert(name, h.clone());
            reg.prometheus_text()
        }
        AnyH2::F32(h) => {
            let reg: OperatorRegistry<f32> = OperatorRegistry::new();
            reg.insert(name, h.clone());
            reg.prometheus_text()
        }
        AnyH2::Mixed(m) => {
            let reg: OperatorRegistry<f32> = OperatorRegistry::new();
            reg.insert(name, m.inner().clone());
            reg.prometheus_text()
        }
    }
}

/// Runs one serving workload and prints a Prometheus text exposition:
/// the service's own series (including the block-cache counters when a
/// `--cache-budget` is active), the registry's per-operator resident-byte
/// gauges, then the process-wide telemetry registry (kernel-eval,
/// block-generation and cache counters, span aggregates).
fn cmd_metrics(o: &Opts) {
    let op = load_or_build(o);
    let name = match &o.file {
        Some(f) => std::path::Path::new(f)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| f.clone()),
        None => format!("{}-n{}", o.kernel, o.n),
    };
    let k = o.batches[0].max(1);
    let svc = MatvecService::new(op.clone(), k);
    run_workload(&svc, o.requests, o.seed);
    print!("{}", svc.metrics().prometheus_text());
    print!("{}", registry_text(&op, &name));
    print!("{}", h2_telemetry::snapshot().prometheus_text());
}

/// The `update` workload at one storage width: registry-mediated
/// clone-apply-swap updates interleaved with matvecs, verifying the swap
/// protocol every round.
fn update_workload<S: Scalar>(
    bytes: &[u8],
    kernel: Arc<dyn Kernel>,
    o: &Opts,
) -> Result<(), String> {
    let mut h2 = codec::decode::<S>(bytes, kernel).map_err(|e| e.to_string())?;
    h2.set_cache_budget(o.cache_budget);
    let dim = h2.dim();
    let reg: OperatorRegistry<S> = OperatorRegistry::new();
    reg.insert("live", Arc::new(h2));
    let first = reg.get("live").expect("just inserted");
    println!(
        "registered 'live': n={} dim={dim} scalar={} epoch={}",
        first.n(),
        S::NAME,
        first.epoch()
    );
    for round in 0..o.updates {
        // A handle taken before the swap: the in-flight side of the
        // protocol. It must finish on the epoch it started on.
        let inflight = reg.get("live").expect("registered");
        let b: Vec<S> = h2_core::error_est::probe_vector(inflight.n(), o.seed ^ (round as u64))
            .into_iter()
            .map(S::from_f64)
            .collect();
        let y_inflight = inflight.matvec(&b);
        let fresh_pts = gen::uniform_cube(o.points, dim, o.seed + 1 + round as u64);
        let departing: Vec<usize> = (0..o.points.min(inflight.n() - 1)).collect();
        let t = Instant::now();
        let (swapped, (ins, rem)) = reg
            .update_with("live", |op| {
                let ins = op.insert_points(&fresh_pts)?;
                let rem = op.remove_points(&departing)?;
                Ok::<_, h2_core::UpdateError>((ins, rem))
            })
            .expect("registered")
            .map_err(|e| e.to_string())?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        // Post-swap submissions see the new operator; the in-flight handle
        // is bit-identical to its pre-swap result.
        assert!(Arc::ptr_eq(&reg.get("live").expect("registered"), &swapped));
        assert_eq!(
            inflight.matvec(&b),
            y_inflight,
            "in-flight handle changed under a swap"
        );
        let b2: Vec<S> = h2_core::error_est::probe_vector(swapped.n(), o.seed ^ 0xD1CE)
            .into_iter()
            .map(S::from_f64)
            .collect();
        let y2 = swapped.matvec(&b2);
        let err = swapped.estimate_rel_error(&b2, &y2, 12, o.seed);
        println!(
            "round {round}: +{} -{} points in {ms:.1} ms \
             (path {} nodes, {} blocks refactored, {} rebuilds) \
             epoch {} -> {}, sampled rel err {:.2e}",
            ins.inserted,
            rem.removed,
            ins.path_nodes + rem.path_nodes,
            ins.refactored_blocks + rem.refactored_blocks,
            ins.rebuilds + rem.rebuilds,
            inflight.epoch(),
            swapped.epoch(),
            err
        );
    }
    let final_op = reg.get("live").expect("registered");
    println!(
        "final: n={} epoch={} registry updates={}",
        final_op.n(),
        final_op.epoch(),
        reg.update_count("live").expect("registered")
    );
    for line in reg.prometheus_text().lines() {
        if line.contains("_epoch{") || line.contains("_updates{") {
            println!("{line}");
        }
    }
    if let Some(out) = &o.out {
        let bytes = codec::encode(final_op.as_ref());
        std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
        println!(
            "saved {out}: {:.1} KiB at epoch {} (stored epoch {})",
            bytes.len() as f64 / 1024.0,
            final_op.epoch(),
            codec::stored_epoch(&bytes).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

/// `update`: load an operator file into a versioned registry slot and run
/// interleaved serve/update rounds against it, at the file's own storage
/// precision.
fn cmd_update(o: &Opts) {
    let Some(file) = &o.file else {
        usage("update needs --file FILE (persist one first with `h2serve save`)");
    };
    let kernel = make_kernel(&o.kernel);
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("could not read {file}: {e}");
            exit(1);
        }
    };
    let result = match codec::stored_scalar(&bytes) {
        Ok("f32") => update_workload::<f32>(&bytes, kernel, o),
        Ok(_) => update_workload::<f64>(&bytes, kernel, o),
        Err(e) => Err(e.to_string()),
    };
    if let Err(e) = result {
        eprintln!("update failed: {e}");
        exit(1);
    }
}

// ------------------------------------------------- multi-process serving

/// Network configuration from the CLI flags: defaults, with `--io-timeout-ms`
/// bounding both sweep waits and shutdown drains when set (integration
/// tests use a short value so fault injection resolves quickly).
/// `--trace FILE` turns on distributed tracing (workers ship span buffers
/// back after every sweep) and `--flight-dir DIR` arms the crash flight
/// recorder in every process of the deployment.
fn net_config(o: &Opts) -> NetConfig {
    let mut cfg = NetConfig::default();
    if let Some(ms) = o.io_timeout_ms {
        cfg.io_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    cfg.trace = o.trace_out.is_some();
    cfg.flight_dir = o.flight_dir.as_ref().map(std::path::PathBuf::from);
    cfg
}

/// `shard-worker`: load the operator file and serve one shard rank until
/// the coordinator drains us. Exits non-zero on any typed failure, which
/// the coordinator's shutdown reports per rank.
fn cmd_shard_worker(o: &Opts) {
    let Some(file) = &o.file else {
        usage("shard-worker needs --file FILE");
    };
    let Some(connect) = &o.connect else {
        usage("shard-worker needs --connect ADDR");
    };
    if o.shards == 0 {
        usage("shard-worker needs --shards N (N >= 1)");
    }
    let kernel = make_kernel(&o.kernel);
    let cfg = net_config(o);
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("rank {}: could not read {file}: {e}", o.rank);
            exit(1);
        }
    };
    // Serve at the file's own storage precision; the handshake's scalar
    // byte rejects a coordinator running a different width.
    let report = match codec::stored_scalar(&bytes) {
        Ok("f32") => codec::decode::<f32>(&bytes, kernel)
            .map_err(|e| e.to_string())
            .and_then(|mut h2| {
                h2.set_cache_budget(o.cache_budget);
                run_worker(&h2, o.rank, o.shards, connect, cfg).map_err(|e| e.to_string())
            }),
        Ok(_) => codec::decode::<f64>(&bytes, kernel)
            .map_err(|e| e.to_string())
            .and_then(|mut h2| {
                h2.set_cache_budget(o.cache_budget);
                run_worker(&h2, o.rank, o.shards, connect, cfg).map_err(|e| e.to_string())
            }),
        Err(e) => Err(e.to_string()),
    };
    match report {
        Ok(r) => {
            println!(
                "rank {} drained: {} sweeps, sent {} B / {} msgs, recv {} B / {} msgs",
                r.rank,
                r.sweeps,
                r.traffic.sent_bytes,
                r.traffic.sent_messages,
                r.traffic.recv_bytes,
                r.traffic.recv_messages
            );
        }
        Err(e) => {
            eprintln!("rank {}: {e}", o.rank);
            exit(1);
        }
    }
}

/// Spawns `shards` `shard-worker` children of this binary and returns the
/// running deployment.
fn spawn_deployment<S: Scalar>(
    h2: Arc<H2MatrixS<S>>,
    o: &Opts,
    file: &str,
) -> Result<ShardCoordinator<S>, NetError> {
    let exe = std::env::current_exe().map_err(|e| NetError::Spawn {
        detail: format!("cannot locate own binary: {e}"),
    })?;
    let cfg = net_config(o);
    let bound = BoundCoordinator::bind(h2, o.shards, cfg)?;
    bound.spawn(|rank, addr| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["shard-worker", "--file", file, "--connect", addr])
            .args(["--rank", &rank.to_string()])
            .args(["--shards", &o.shards.to_string()])
            .args(["--kernel", &o.kernel]);
        if let Some(ms) = o.io_timeout_ms {
            cmd.args(["--io-timeout-ms", &ms.to_string()]);
        }
        if let Some(dir) = &o.flight_dir {
            cmd.args(["--flight-dir", dir]);
        }
        cmd.spawn().map_err(|e| NetError::Spawn {
            detail: format!("rank {rank}: {e}"),
        })
    })
}

/// The serving workload of `serve`, generic over the storage scalar:
/// batched requests through `MatvecService` over the distributed operator,
/// each result checked bit-for-bit against the local serial apply.
fn serve_distributed<S: Scalar>(h2: Arc<H2MatrixS<S>>, o: &Opts, file: &str) {
    let fail = |e: NetError| -> ! {
        eprintln!("serve failed: {e}");
        exit(1);
    };
    let coord = match spawn_deployment(h2.clone(), o, file) {
        Ok(c) => c,
        Err(e) => fail(e),
    };
    println!(
        "deployment up: {} workers serving n={} (plan level {})",
        coord.shards(),
        coord.n(),
        coord.plan().level
    );
    for (r, h) in coord.health().into_iter().enumerate() {
        match h {
            Ok(rtt) => println!("rank {r}: alive, ping {:.1} us", rtt.as_secs_f64() * 1e6),
            Err(e) => fail(e),
        }
    }
    let n = coord.n();
    let op = Arc::new(coord);
    let k = o.batches[0].max(1);
    let svc: Arc<MatvecService<ShardCoordinator<S>, S>> =
        Arc::new(MatvecService::new(op.clone(), k));
    // The scrape endpoint runs for the whole workload so an operator can
    // watch the deployment live: service latency histograms plus the
    // process-wide telemetry counters (net bytes/frames, cache, spans).
    let mut scrape = o.metrics_addr.as_ref().map(|addr| {
        let svc = svc.clone();
        let srv = MetricsServer::start(addr, move || {
            let mut body = svc.metrics().prometheus_text();
            body.push_str(&h2_telemetry::snapshot().prometheus_text());
            body
        })
        .unwrap_or_else(|e| {
            eprintln!("serve failed: cannot bind metrics endpoint {addr}: {e}");
            exit(1);
        });
        println!("metrics: http://{}/metrics (and /healthz)", srv.addr());
        srv
    });
    let mk = |s: usize| -> Vec<S> {
        h2_core::error_est::probe_vector(n, o.seed ^ (s as u64) << 8)
            .into_iter()
            .map(S::from_f64)
            .collect()
    };
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..o.requests)
        .map(|s| svc.submit(mk(s)).expect("length checked at build"))
        .collect();
    let rep = svc.drain();
    for (s, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(y) => {
                if y != H2Operator::matvec(h2.as_ref(), &mk(s)) {
                    eprintln!("request {s}: distributed result differs from the local apply");
                    exit(1);
                }
            }
            Err(e) => {
                eprintln!("request {s} failed: {e}");
                exit(1);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let m = svc.metrics();
    let traffic = op.traffic();
    println!(
        "served {} requests in {} sweeps (batch cap {k}): {:.1} req/s, p99 {} us; \
         all bit-identical to the local operator",
        rep.requests,
        rep.sweeps,
        rep.requests as f64 / wall,
        m.p99_latency_us
    );
    println!(
        "coordinator traffic: sent {} B / {} msgs, recv {} B / {} msgs",
        traffic.sent_bytes, traffic.sent_messages, traffic.recv_bytes, traffic.recv_messages
    );
    // `--duration-s` keeps traffic flowing past the verified workload so a
    // scraper has something live to watch; results were already verified
    // bit-for-bit above, so these only check for transport errors.
    if o.duration_s > 0 {
        let deadline = Instant::now() + std::time::Duration::from_secs(o.duration_s);
        let mut extra = 0usize;
        while Instant::now() < deadline {
            let tickets: Vec<_> = (0..k)
                .map(|s| svc.submit(mk(extra + s)).expect("length checked at build"))
                .collect();
            svc.drain();
            for t in tickets {
                if let Err(e) = t.wait() {
                    eprintln!("sustained request failed: {e}");
                    exit(1);
                }
            }
            extra += k;
        }
        println!(
            "sustained traffic for {}s: {} further requests served",
            o.duration_s, extra
        );
    }
    if let Some(srv) = scrape.as_mut() {
        srv.stop();
    }
    if let Some(path) = &o.trace_out {
        let json = op.cluster_trace_json();
        match std::fs::write(path, &json) {
            Ok(()) => println!("trace: wrote {} ({} bytes)", path, json.len()),
            Err(e) => {
                eprintln!("serve failed: cannot write trace {path}: {e}");
                exit(1);
            }
        }
    }
    drop(scrape);
    drop(svc);
    let coord = Arc::try_unwrap(op).unwrap_or_else(|_| {
        eprintln!("serve failed: coordinator still shared at shutdown");
        exit(1);
    });
    match coord.shutdown() {
        Ok(()) => println!("all workers drained cleanly"),
        Err(e) => fail(e),
    }
}

// --------------------------------------------------- multi-tenant hosting

/// The `serve --tenants` workload at one storage width: host one operator
/// per tenant in a registry (zero-copy under `--mmap`), verify bitwise
/// identity against the owned decode, partition the cache budget by
/// `cache_share`, then serve a round-robin workload through a WDRR
/// `MatvecService` and report per-tenant quantiles and gauges.
fn serve_tenants<S: Scalar>(o: &Opts, file: &str, bytes: &[u8], table: TenantTable) {
    let kernel = make_kernel(&o.kernel);
    // The owned decode is the bitwise reference every hosted operator is
    // checked against, and the footprint baseline for the resident gauge.
    let owned = match codec::decode::<S>(bytes, kernel.clone()) {
        Ok(h2) => h2,
        Err(e) => {
            eprintln!("load failed: {e}");
            exit(1);
        }
    };
    let owned_total = owned.memory_report().total();
    let cache_total = o.cache_budget.resolve(owned.full_block_bytes());
    let budgets = split_budget(cache_total, &table.cache_shares());

    let reg: OperatorRegistry<S> = OperatorRegistry::new();
    let t = Instant::now();
    for (i, id, _) in table.iter() {
        let budget = match budgets[i] {
            0 => CacheBudget::Off,
            b => CacheBudget::Bytes(b as u64),
        };
        let loaded = if o.mmap {
            reg.load_file_mmap_with_budget(id.as_str(), file, kernel.clone(), budget)
        } else {
            reg.load_file_with_budget(id.as_str(), file, kernel.clone(), budget)
        };
        if let Err(e) = loaded {
            eprintln!("tenant '{id}': load failed: {e}");
            exit(1);
        }
    }
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    let rows = reg.resident_bytes();
    let resident: usize = rows.iter().map(|r| r.total_bytes).sum();
    let mapped: usize = rows.iter().map(|r| r.mapped_bytes).sum();
    println!(
        "hosted {} operators ({}) in {load_ms:.1} ms: resident {:.1} KiB, \
         mapped {:.1} KiB (owned footprint {:.1} KiB per operator)",
        table.len(),
        if o.mmap { "mmap" } else { "owned" },
        resident as f64 / 1024.0,
        mapped as f64 / 1024.0,
        owned_total as f64 / 1024.0
    );

    // Every hosted operator must apply bit-identically to the owned decode.
    let probe: Vec<S> = h2_core::error_est::probe_vector(owned.n(), o.seed)
        .into_iter()
        .map(S::from_f64)
        .collect();
    let want: Vec<u64> = owned
        .matvec(&probe)
        .iter()
        .map(|v| v.to_f64().to_bits())
        .collect();
    for (_, id, _) in table.iter() {
        let op = reg.get(id.as_str()).expect("just registered");
        let got: Vec<u64> = op
            .matvec(&probe)
            .iter()
            .map(|v| v.to_f64().to_bits())
            .collect();
        if got != want {
            eprintln!("tenant '{id}': hosted operator differs from the owned decode");
            exit(1);
        }
    }
    println!(
        "bitwise: all {} hosted operators identical to the owned decode",
        table.len()
    );
    if o.mmap {
        // Resident fraction per entry: resident / (resident + mapped) is
        // exactly resident/owned, since mapping moves payload bytes from
        // the heap to the pages without changing the logical total.
        let worst = rows
            .iter()
            .map(|r| r.total_bytes as f64 / (r.total_bytes + r.mapped_bytes) as f64)
            .fold(0.0f64, f64::max);
        println!(
            "mmap residency: worst resident fraction {:.2}%",
            worst * 100.0
        );
        if worst <= 0.05 {
            println!("TENANT_SERVE_MMAP_OK");
        } else {
            eprintln!(
                "mmap residency gate failed: resident fraction {:.2}% > 5%",
                worst * 100.0
            );
            exit(1);
        }
    }

    // One WDRR service arbitrates all tenants; every tenant hosts the same
    // file here, so a single fused sweep serves each drained batch.
    let op = reg.get(table.id(0).as_str()).expect("registered");
    let k = o.batches[0].max(1);
    let svc = Arc::new(MatvecService::with_tenants(
        op,
        k,
        table.clone(),
        QueueMode::Wdrr,
    ));
    if cache_total > 0 {
        svc.set_tenant_cache_budgets(budgets);
    }
    let mut scrape = o.metrics_addr.as_ref().map(|addr| {
        let svc = svc.clone();
        let reg_text = reg.prometheus_text();
        let srv = MetricsServer::start(addr, move || {
            let mut body = svc.metrics().prometheus_text();
            body.push_str(&svc.tenant_prometheus_text());
            body.push_str(&reg_text);
            body.push_str(&h2_telemetry::snapshot().prometheus_text());
            body
        })
        .unwrap_or_else(|e| {
            eprintln!("serve failed: cannot bind metrics endpoint {addr}: {e}");
            exit(1);
        });
        println!("metrics: http://{}/metrics (and /healthz)", srv.addr());
        srv
    });
    let n = owned.n();
    for round in 0..o.requests {
        let tickets: Vec<_> = table
            .iter()
            .map(|(_, id, _)| {
                let b: Vec<S> = h2_core::error_est::probe_vector(n, o.seed ^ (round as u64) << 8)
                    .into_iter()
                    .map(S::from_f64)
                    .collect();
                (id.clone(), svc.submit_for(id.as_str(), b))
            })
            .collect();
        svc.drain();
        for (id, t) in tickets {
            let ticket = match t {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tenant '{id}': submit failed: {e}");
                    exit(1);
                }
            };
            if let Err(e) = ticket.wait() {
                eprintln!("tenant '{id}': request failed: {e}");
                exit(1);
            }
        }
    }
    println!(
        "{:>16} {:>8} {:>12} {:>12}",
        "tenant", "served", "p50 us", "p99 us"
    );
    for (_, id, _) in table.iter() {
        println!(
            "{:>16} {:>8} {:>12} {:>12}",
            id.as_str(),
            svc.tenant_served(id.as_str()),
            svc.tenant_latency_quantile_us(id.as_str(), 0.50),
            svc.tenant_latency_quantile_us(id.as_str(), 0.99)
        );
    }
    for line in svc.tenant_prometheus_text().lines() {
        if line.starts_with("h2_tenant_cache_budget_bytes")
            || line.starts_with("h2_tenant_requests_total")
        {
            println!("{line}");
        }
    }
    if let Some(srv) = scrape.as_mut() {
        srv.stop();
    }
}

/// `serve --tenants`: parse the tenant policy file and host one operator
/// per tenant at the file's own storage precision.
fn cmd_serve_tenants(o: &Opts, tenants: &str) {
    let Some(file) = &o.file else {
        usage("serve --tenants needs --file FILE (persist one first with `h2serve save`)");
    };
    let text = match std::fs::read_to_string(tenants) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {tenants}: {e}");
            exit(1);
        }
    };
    let table = match TenantTable::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bad tenant policy file {tenants}: {e}");
            exit(1);
        }
    };
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("could not read {file}: {e}");
            exit(1);
        }
    };
    match codec::stored_scalar(&bytes) {
        Ok("f32") => serve_tenants::<f32>(o, file, &bytes, table),
        Ok(_) => serve_tenants::<f64>(o, file, &bytes, table),
        Err(e) => {
            eprintln!("load failed: {e}");
            exit(1);
        }
    }
}

/// `serve`: bind a coordinator, spawn `--shards` worker processes from the
/// operator file, serve a verified workload, and drain the deployment.
/// With `--tenants FILE`, run the single-process multi-tenant hosting mode
/// instead (see [`cmd_serve_tenants`]).
fn cmd_serve(o: &Opts) {
    if let Some(tenants) = &o.tenants {
        return cmd_serve_tenants(o, tenants);
    }
    let Some(file) = &o.file else {
        usage("serve needs --file FILE (persist one first with `h2serve save`)");
    };
    if o.shards == 0 {
        usage("serve needs --shards N (N >= 1), or --tenants FILE for multi-tenant hosting");
    }
    let kernel = make_kernel(&o.kernel);
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("could not read {file}: {e}");
            exit(1);
        }
    };
    // The deployment runs at the file's storage precision end to end; the
    // workers load the same file, so the scalar always agrees.
    let result =
        match codec::stored_scalar(&bytes) {
            Ok("f32") => codec::decode::<f32>(&bytes, kernel)
                .map(|h2| serve_distributed(Arc::new(h2), o, file)),
            Ok(_) => codec::decode::<f64>(&bytes, kernel)
                .map(|h2| serve_distributed(Arc::new(h2), o, file)),
            Err(e) => Err(e),
        };
    if let Err(e) = result {
        eprintln!("load failed: {e}");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing subcommand");
    };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "build" => cmd_build(&o),
        "save" => cmd_save(&o),
        "load" => cmd_load(&o),
        "serve-bench" => cmd_serve_bench(&o),
        "metrics" => cmd_metrics(&o),
        "serve" => cmd_serve(&o),
        "shard-worker" => cmd_shard_worker(&o),
        "update" => cmd_update(&o),
        "--help" | "-h" => usage(""),
        c => usage(&format!("unknown subcommand '{c}'")),
    }
}
