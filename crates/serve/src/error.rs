//! Typed errors: load-time failures of the persistence codec and
//! submission-time failures of the batched matvec service.

use std::fmt;

/// Why a matvec request could not be enqueued. Submission never panics and
/// never partially enqueues a batch — a rejected call leaves the queue
/// exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A batch submission carried zero right-hand sides. Draining nothing
    /// through a fused sweep is meaningless, so the service refuses up
    /// front instead of silently minting no tickets.
    EmptyBatch,
    /// A right-hand side's length does not match the operator's column
    /// count. `index` identifies the offending vector within a batch
    /// submission (`None` for single-vector [`crate::MatvecService::submit`]).
    LengthMismatch {
        /// Length of the rejected right-hand side.
        got: usize,
        /// The operator's column count.
        expected: usize,
        /// Position within the submitted batch, if any.
        index: Option<usize>,
    },
    /// The tenant QoS plane refused the submission: the tenant is unknown,
    /// its admission state is closed, or its queue-depth cap is hit
    /// (backpressure). The queue is untouched by a rejection.
    AdmissionRejected {
        /// The tenant name the submission targeted.
        tenant: String,
        /// The admission rule that fired.
        reason: h2_tenant::AdmitError,
    },
    /// The backend operator failed while serving the request — a remote
    /// shard died mid-sweep, the service was dropped with requests still
    /// queued, or any other [`h2_core::ApplyError`] from a fallible apply.
    /// Distinguishes "your request was malformed" (the variants above,
    /// raised at submit time) from "the request was fine but the backend
    /// could not serve it" (raised at drain time through the ticket).
    Backend {
        /// Human-readable diagnostic from the failing backend.
        detail: String,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::EmptyBatch => write!(f, "empty batch: no right-hand sides submitted"),
            SubmitError::LengthMismatch {
                got,
                expected,
                index,
            } => {
                write!(f, "rhs length {got} != operator dimension {expected}")?;
                if let Some(i) = index {
                    write!(f, " (batch entry {i})")?;
                }
                Ok(())
            }
            SubmitError::AdmissionRejected { tenant, reason } => {
                write!(f, "tenant '{tenant}' rejected: {reason}")
            }
            SubmitError::Backend { detail } => write!(f, "backend failure: {detail}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a serialized operator could not be loaded. Every decoding path
/// returns one of these — the loader never panics, whatever the bytes.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the `H2SERVE` magic — not an operator
    /// file at all.
    BadMagic,
    /// The file was written by an incompatible codec version. This build
    /// reads the current version and the previous one (v4 and v3); older
    /// or future versions are refused here.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// The newest version this build can read (and the one it writes).
        supported: u32,
    },
    /// The kernel supplied at load time does not match the one the operator
    /// was built with (different name, or same name with different
    /// parameters caught by the probe-value fingerprint).
    KernelMismatch {
        /// Kernel name recorded in the file.
        stored: String,
        /// Name of the kernel supplied to the loader.
        given: String,
        /// What part of the fingerprint disagreed.
        reason: &'static str,
    },
    /// The operator was stored in a different scalar precision than the
    /// caller requested (e.g. an `f32` file loaded as `H2MatrixS<f64>`).
    /// The codec never converts silently — re-encode in the desired
    /// precision instead.
    PrecisionMismatch {
        /// Scalar type recorded in the file ("f32" or "f64").
        stored: &'static str,
        /// Scalar type the loader was asked to produce.
        requested: &'static str,
    },
    /// A section is truncated, has a failing checksum, or contains values
    /// that cannot be decoded.
    CorruptSection {
        /// Which section failed.
        section: &'static str,
        /// Decoder diagnostic.
        reason: String,
    },
    /// The sections decoded individually but do not assemble into a
    /// structurally valid operator (shape or config inconsistency).
    Inconsistent(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not an h2-serve operator file (bad magic)"),
            LoadError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "format version {found} unsupported (this build reads {supported})"
                )
            }
            LoadError::KernelMismatch {
                stored,
                given,
                reason,
            } => write!(
                f,
                "kernel mismatch: file built with '{stored}', loader given '{given}' ({reason})"
            ),
            LoadError::PrecisionMismatch { stored, requested } => write!(
                f,
                "precision mismatch: file stores {stored} scalars, loader requested {requested}"
            ),
            LoadError::CorruptSection { section, reason } => {
                write!(f, "corrupt '{section}' section: {reason}")
            }
            LoadError::Inconsistent(msg) => write!(f, "inconsistent operator data: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}
