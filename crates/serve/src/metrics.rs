//! Lightweight serving metrics: per-request latency percentiles split into
//! queue-wait and compute, fused-sweep throughput, and batch-size
//! histograms.
//!
//! Each request's end-to-end latency decomposes as **queue wait** (enqueue →
//! its sweep starts) plus **compute** (the fused sweep it was served by).
//! Reporting the two separately shows whether a slow p99 comes from batching
//! delay (requests waiting for a drain) or from the sweep itself — the
//! knob to turn differs. Recording is mutex-protected (the service already
//! serializes on its queue lock, so contention is negligible) and
//! snapshotting is cheap enough to call between benchmark phases.

use h2_core::CacheStats;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Default)]
struct Inner {
    queue_us: Vec<u64>,
    compute_us: Vec<u64>,
    latencies_us: Vec<u64>,
    batch_hist: BTreeMap<usize, u64>,
    requests: u64,
    sweeps: u64,
    busy: Duration,
}

/// Accumulates service-side measurements.
#[derive(Default)]
pub struct ServiceMetrics {
    inner: Mutex<Inner>,
}

impl ServiceMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fused sweep that served `batch` requests in `busy` time;
    /// `queue_waits` holds each request's enqueue → sweep-start wait. Every
    /// request in the sweep shares the sweep's `busy` as its compute time,
    /// so its end-to-end latency is `wait + busy`.
    ///
    /// A caller passing a wait list of the wrong length gets defensive
    /// reconciliation, not corruption: exactly `batch` requests are
    /// recorded, missing waits count as zero and extras are ignored, so the
    /// per-request samples always stay consistent with the request total.
    pub fn record_sweep(&self, batch: usize, busy: Duration, queue_waits: &[Duration]) {
        let mut g = self.inner.lock().unwrap();
        g.sweeps += 1;
        g.requests += batch as u64;
        g.busy += busy;
        *g.batch_hist.entry(batch).or_insert(0) += 1;
        let busy_us = busy.as_micros() as u64;
        for k in 0..batch {
            let w_us = queue_waits.get(k).map_or(0, |w| w.as_micros() as u64);
            g.queue_us.push(w_us);
            g.compute_us.push(busy_us);
            g.latencies_us.push(w_us + busy_us);
        }
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut lat = g.latencies_us.clone();
        let mut queue = g.queue_us.clone();
        let mut compute = g.compute_us.clone();
        lat.sort_unstable();
        queue.sort_unstable();
        compute.sort_unstable();
        let busy_s = g.busy.as_secs_f64();
        MetricsSnapshot {
            requests: g.requests,
            sweeps: g.sweeps,
            p50_latency_us: percentile(&lat, 0.50),
            p99_latency_us: percentile(&lat, 0.99),
            p50_queue_us: percentile(&queue, 0.50),
            p99_queue_us: percentile(&queue, 0.99),
            p50_compute_us: percentile(&compute, 0.50),
            p99_compute_us: percentile(&compute, 0.99),
            mean_batch: if g.sweeps == 0 {
                0.0
            } else {
                g.requests as f64 / g.sweeps as f64
            },
            batch_hist: g.batch_hist.iter().map(|(&k, &v)| (k, v)).collect(),
            busy_ms: busy_s * 1e3,
            throughput_rps: if busy_s > 0.0 {
                g.requests as f64 / busy_s
            } else {
                0.0
            },
            cache: None,
        }
    }

    /// Clears all recorded measurements.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = Inner::default();
    }

    /// The current snapshot in the Prometheus text exposition format (see
    /// [`MetricsSnapshot::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }
}

/// Nearest-rank percentile over a sorted sample; 0 for an empty sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Point-in-time view of the service metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Fused sweeps executed.
    pub sweeps: u64,
    /// Median request latency (enqueue → result), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Median queue wait (enqueue → sweep start), microseconds.
    pub p50_queue_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub p99_queue_us: u64,
    /// Median compute time (the serving sweep), microseconds.
    pub p50_compute_us: u64,
    /// 99th-percentile compute time, microseconds.
    pub p99_compute_us: u64,
    /// Mean requests per fused sweep.
    pub mean_batch: f64,
    /// `(batch size, sweep count)` histogram, ascending batch size.
    pub batch_hist: Vec<(usize, u64)>,
    /// Total time spent inside fused sweeps, milliseconds.
    pub busy_ms: f64,
    /// Requests per second of sweep time.
    pub throughput_rps: f64,
    /// Counter snapshot of the served operator's budgeted block cache
    /// (`None` when the operator runs without one). Populated by
    /// [`crate::MatvecService::metrics`]; raw [`ServiceMetrics::snapshot`]
    /// always leaves it `None`.
    pub cache: Option<CacheStats>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot in the Prometheus text exposition format:
    /// request/sweep/busy totals as counters, latency percentiles as
    /// `quantile`-labeled gauges, and the batch histogram as one
    /// `batch`-labeled counter series per observed size.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE h2_serve_requests_total counter");
        let _ = writeln!(out, "h2_serve_requests_total {}", self.requests);
        let _ = writeln!(out, "# TYPE h2_serve_sweeps_total counter");
        let _ = writeln!(out, "h2_serve_sweeps_total {}", self.sweeps);
        let _ = writeln!(out, "# TYPE h2_serve_busy_seconds_total counter");
        let _ = writeln!(out, "h2_serve_busy_seconds_total {:.6}", self.busy_ms / 1e3);
        for (name, p50, p99) in [
            ("latency", self.p50_latency_us, self.p99_latency_us),
            ("queue", self.p50_queue_us, self.p99_queue_us),
            ("compute", self.p50_compute_us, self.p99_compute_us),
        ] {
            let _ = writeln!(out, "# TYPE h2_serve_{name}_microseconds gauge");
            let _ = writeln!(
                out,
                "h2_serve_{name}_microseconds{{quantile=\"0.5\"}} {p50}"
            );
            let _ = writeln!(
                out,
                "h2_serve_{name}_microseconds{{quantile=\"0.99\"}} {p99}"
            );
        }
        let _ = writeln!(out, "# TYPE h2_serve_batch_sweeps_total counter");
        for &(batch, count) in &self.batch_hist {
            let _ = writeln!(
                out,
                "h2_serve_batch_sweeps_total{{batch=\"{batch}\"}} {count}"
            );
        }
        let _ = writeln!(out, "# TYPE h2_serve_throughput_rps gauge");
        let _ = writeln!(out, "h2_serve_throughput_rps {:.3}", self.throughput_rps);
        if let Some(c) = &self.cache {
            for (name, value) in [
                ("hits_total", c.hits),
                ("misses_total", c.misses),
                ("evictions_total", c.evictions),
                ("evicted_bytes_total", c.evicted_bytes),
                ("rejected_total", c.rejected),
            ] {
                let _ = writeln!(out, "# TYPE h2_serve_cache_{name} counter");
                let _ = writeln!(out, "h2_serve_cache_{name} {value}");
            }
            for (name, value) in [
                ("resident_bytes", c.resident_bytes),
                ("pinned_bytes", c.pinned_bytes),
                ("budget_bytes", c.budget_bytes),
                ("entries", c.entries),
            ] {
                let _ = writeln!(out, "# TYPE h2_serve_cache_{name} gauge");
                let _ = writeln!(out, "h2_serve_cache_{name} {value}");
            }
            let _ = writeln!(out, "# TYPE h2_serve_cache_hit_rate gauge");
            let _ = writeln!(out, "h2_serve_cache_hit_rate {:.4}", c.hit_rate());
        }
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {} sweeps (mean batch {:.2}), p50 {} us (queue {} + compute {}), \
             p99 {} us (queue {} + compute {}), busy {:.1} ms, {:.0} req/s, batches [",
            self.requests,
            self.sweeps,
            self.mean_batch,
            self.p50_latency_us,
            self.p50_queue_us,
            self.p50_compute_us,
            self.p99_latency_us,
            self.p99_queue_us,
            self.p99_compute_us,
            self.busy_ms,
            self.throughput_rps
        )?;
        for (k, &(batch, count)) in self.batch_hist.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{batch}x{count}")?;
        }
        write!(f, "]")?;
        if let Some(c) = &self.cache {
            write!(
                f,
                ", cache {:.0}% hit ({}/{} KiB resident)",
                c.hit_rate() * 100.0,
                c.resident_bytes / 1024,
                c.budget_bytes / 1024
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_histogram() {
        let m = ServiceMetrics::new();
        // Two sweeps: batch 3 (2 ms busy) then batch 1 (1 ms busy).
        m.record_sweep(
            3,
            Duration::from_millis(2),
            &[
                Duration::from_micros(100),
                Duration::from_micros(200),
                Duration::from_micros(300),
            ],
        );
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(400)]);
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.sweeps, 2);
        assert_eq!(s.mean_batch, 2.0);
        assert_eq!(s.batch_hist, vec![(1, 1), (3, 1)]);
        // Queue waits: [100, 200, 300, 400]; compute: [2000, 2000, 2000,
        // 1000]; end-to-end: [2100, 2200, 2300, 1400].
        assert_eq!(s.p50_queue_us, 300);
        assert_eq!(s.p99_queue_us, 400);
        assert_eq!(s.p50_compute_us, 2000);
        assert_eq!(s.p99_compute_us, 2000);
        assert_eq!(s.p50_latency_us, 2200);
        assert_eq!(s.p99_latency_us, 2300);
        assert!((s.busy_ms - 3.0).abs() < 1e-9);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn latency_is_queue_plus_compute() {
        let m = ServiceMetrics::new();
        m.record_sweep(
            2,
            Duration::from_micros(500),
            &[Duration::from_micros(10), Duration::from_micros(20)],
        );
        let s = m.snapshot();
        assert_eq!(s.p99_latency_us, 520);
        assert_eq!(s.p99_queue_us, 20);
        assert_eq!(s.p99_compute_us, 500);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p50_queue_us, 0);
        assert_eq!(s.p50_compute_us, 0);
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn reset_clears() {
        let m = ServiceMetrics::new();
        m.record_sweep(2, Duration::from_millis(1), &[Duration::from_micros(5); 2]);
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }

    #[test]
    fn mismatched_wait_list_is_reconciled() {
        let m = ServiceMetrics::new();
        // Short list: the missing wait counts as zero.
        m.record_sweep(3, Duration::from_micros(100), &[Duration::from_micros(50)]);
        // Long list: the extra wait is ignored.
        m.record_sweep(
            1,
            Duration::from_micros(100),
            &[Duration::from_micros(10), Duration::from_micros(999)],
        );
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.sweeps, 2);
        // Exactly one latency sample per request, never more or fewer.
        assert_eq!(s.p99_queue_us, 50, "extras ignored, missing are zero");
        assert_eq!(s.p99_latency_us, 150);
    }

    #[test]
    fn display_includes_busy_and_batch_histogram() {
        let m = ServiceMetrics::new();
        m.record_sweep(2, Duration::from_millis(3), &[Duration::from_micros(5); 2]);
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(5)]);
        let text = m.snapshot().to_string();
        assert!(text.contains("busy 4.0 ms"), "missing busy_ms in: {text}");
        assert!(
            text.contains("batches [1x1 2x1]"),
            "missing batch histogram in: {text}"
        );
    }

    #[test]
    fn prometheus_text_exposes_all_series() {
        let m = ServiceMetrics::new();
        m.record_sweep(
            2,
            Duration::from_millis(2),
            &[Duration::from_micros(100), Duration::from_micros(300)],
        );
        let text = m.prometheus_text();
        assert!(text.contains("# TYPE h2_serve_requests_total counter\n"));
        assert!(text.contains("h2_serve_requests_total 2\n"));
        assert!(text.contains("h2_serve_sweeps_total 1\n"));
        assert!(text.contains("h2_serve_busy_seconds_total 0.002000\n"));
        // Nearest-rank p50 over two samples rounds up to the larger one.
        assert!(text.contains("h2_serve_latency_microseconds{quantile=\"0.5\"} 2300\n"));
        assert!(text.contains("h2_serve_queue_microseconds{quantile=\"0.99\"} 300\n"));
        assert!(text.contains("h2_serve_compute_microseconds{quantile=\"0.5\"} 2000\n"));
        assert!(text.contains("h2_serve_batch_sweeps_total{batch=\"2\"} 1\n"));
        assert!(text.contains("# TYPE h2_serve_throughput_rps gauge\n"));
    }

    #[test]
    fn cache_series_appear_only_when_stats_attached() {
        let m = ServiceMetrics::new();
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(5)]);
        let mut s = m.snapshot();
        assert!(s.cache.is_none(), "raw snapshot never carries cache stats");
        assert!(!s.prometheus_text().contains("h2_serve_cache"));
        s.cache = Some(CacheStats {
            hits: 90,
            misses: 10,
            insertions: 12,
            evictions: 2,
            evicted_bytes: 4096,
            rejected: 1,
            entries: 10,
            resident_bytes: 2048,
            pinned_bytes: 1024,
            budget_bytes: 8192,
        });
        let text = s.prometheus_text();
        assert!(text.contains("# TYPE h2_serve_cache_hits_total counter\n"));
        assert!(text.contains("h2_serve_cache_hits_total 90\n"));
        assert!(text.contains("h2_serve_cache_misses_total 10\n"));
        assert!(text.contains("h2_serve_cache_evicted_bytes_total 4096\n"));
        assert!(text.contains("h2_serve_cache_resident_bytes 2048\n"));
        assert!(text.contains("h2_serve_cache_budget_bytes 8192\n"));
        assert!(text.contains("h2_serve_cache_hit_rate 0.9000\n"));
        assert!(
            s.to_string().contains("cache 90% hit (2/8 KiB resident)"),
            "display line: {s}"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=101).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 101);
        assert_eq!(percentile(&v, 0.5), 51);
    }
}
