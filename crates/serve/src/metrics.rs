//! Lightweight serving metrics: per-request latency percentiles, fused-sweep
//! throughput, and batch-size histograms.
//!
//! Recording is mutex-protected (the service already serializes on its queue
//! lock, so contention is negligible) and snapshotting is cheap enough to
//! call between benchmark phases.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Default)]
struct Inner {
    latencies_us: Vec<u64>,
    batch_hist: BTreeMap<usize, u64>,
    requests: u64,
    sweeps: u64,
    busy: Duration,
}

/// Accumulates service-side measurements.
#[derive(Default)]
pub struct ServiceMetrics {
    inner: Mutex<Inner>,
}

impl ServiceMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fused sweep that served `batch` requests in `busy` time,
    /// with the given per-request queue-to-completion latencies.
    pub fn record_sweep(&self, batch: usize, busy: Duration, latencies: &[Duration]) {
        let mut g = self.inner.lock().unwrap();
        g.sweeps += 1;
        g.requests += batch as u64;
        g.busy += busy;
        *g.batch_hist.entry(batch).or_insert(0) += 1;
        g.latencies_us
            .extend(latencies.iter().map(|l| l.as_micros() as u64));
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        let mut lat = g.latencies_us.clone();
        lat.sort_unstable();
        let busy_s = g.busy.as_secs_f64();
        MetricsSnapshot {
            requests: g.requests,
            sweeps: g.sweeps,
            p50_latency_us: percentile(&lat, 0.50),
            p99_latency_us: percentile(&lat, 0.99),
            mean_batch: if g.sweeps == 0 {
                0.0
            } else {
                g.requests as f64 / g.sweeps as f64
            },
            batch_hist: g.batch_hist.iter().map(|(&k, &v)| (k, v)).collect(),
            busy_ms: busy_s * 1e3,
            throughput_rps: if busy_s > 0.0 {
                g.requests as f64 / busy_s
            } else {
                0.0
            },
        }
    }

    /// Clears all recorded measurements.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = Inner::default();
    }
}

/// Nearest-rank percentile over a sorted sample; 0 for an empty sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Point-in-time view of the service metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Fused sweeps executed.
    pub sweeps: u64,
    /// Median request latency (enqueue → result), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Mean requests per fused sweep.
    pub mean_batch: f64,
    /// `(batch size, sweep count)` histogram, ascending batch size.
    pub batch_hist: Vec<(usize, u64)>,
    /// Total time spent inside fused sweeps, milliseconds.
    pub busy_ms: f64,
    /// Requests per second of sweep time.
    pub throughput_rps: f64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {} sweeps (mean batch {:.2}), p50 {} us, p99 {} us, {:.0} req/s",
            self.requests,
            self.sweeps,
            self.mean_batch,
            self.p50_latency_us,
            self.p99_latency_us,
            self.throughput_rps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_histogram() {
        let m = ServiceMetrics::new();
        // Two sweeps: batch 3 then batch 1.
        m.record_sweep(
            3,
            Duration::from_millis(2),
            &[
                Duration::from_micros(100),
                Duration::from_micros(200),
                Duration::from_micros(300),
            ],
        );
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(400)]);
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.sweeps, 2);
        assert_eq!(s.mean_batch, 2.0);
        assert_eq!(s.batch_hist, vec![(1, 1), (3, 1)]);
        assert_eq!(s.p50_latency_us, 300); // nearest rank over [100,200,300,400]
        assert_eq!(s.p99_latency_us, 400);
        assert!((s.busy_ms - 3.0).abs() < 1e-9);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn reset_clears() {
        let m = ServiceMetrics::new();
        m.record_sweep(2, Duration::from_millis(1), &[Duration::from_micros(5); 2]);
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=101).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 101);
        assert_eq!(percentile(&v, 0.5), 51);
    }
}
