//! Lightweight serving metrics: per-request latency percentiles split into
//! queue-wait and compute, fused-sweep throughput, and batch-size
//! histograms.
//!
//! Each request's end-to-end latency decomposes as **queue wait** (enqueue →
//! its sweep starts) plus **compute** (the fused sweep it was served by).
//! Reporting the two separately shows whether a slow p99 comes from batching
//! delay (requests waiting for a drain) or from the sweep itself — the
//! knob to turn differs. Recording is mutex-protected (the service already
//! serializes on its queue lock, so contention is negligible) and
//! snapshotting is cheap enough to call between benchmark phases.
//!
//! Memory is **O(1) in the request count**: latencies land in bounded
//! log-linear [`LogLinearHistogram`]s (~8 KiB each, quantile error under one
//! [`bucket_width`](crate::hist::bucket_width) ≈ 6.25%) instead of
//! per-sample vectors, so a service can absorb an unbounded request stream.
//! [`ServiceMetrics::snapshot_since_last`] yields per-interval views for a
//! scraper polling a long-lived service, and
//! [`ServiceMetrics::keep_exact_samples`] opts into per-sample retention for
//! benchmarks that validate the histograms against exact percentiles.

use crate::hist::LogLinearHistogram;
use h2_core::CacheStats;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// The cumulative counters a windowed snapshot subtracts.
#[derive(Default)]
struct Cumulative {
    queue: LogLinearHistogram,
    compute: LogLinearHistogram,
    latency: LogLinearHistogram,
    batch_hist: BTreeMap<usize, u64>,
    requests: u64,
    sweeps: u64,
    busy: Duration,
}

#[derive(Default)]
struct Inner {
    cur: Cumulative,
    /// State of `cur` at the last [`ServiceMetrics::snapshot_since_last`].
    last: Cumulative,
    /// Opt-in per-sample retention for exactness checks; `None` (the
    /// default) keeps memory independent of the request count.
    exact_latency_us: Option<Vec<u64>>,
}

/// Accumulates service-side measurements.
#[derive(Default)]
pub struct ServiceMetrics {
    inner: Mutex<Inner>,
}

impl ServiceMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fused sweep that served `batch` requests in `busy` time;
    /// `queue_waits` holds each request's enqueue → sweep-start wait. Every
    /// request in the sweep shares the sweep's `busy` as its compute time,
    /// so its end-to-end latency is `wait + busy`.
    ///
    /// A caller passing a wait list of the wrong length gets defensive
    /// reconciliation, not corruption: exactly `batch` requests are
    /// recorded, missing waits count as zero and extras are ignored, so the
    /// per-request samples always stay consistent with the request total.
    pub fn record_sweep(&self, batch: usize, busy: Duration, queue_waits: &[Duration]) {
        let mut g = self.inner.lock().unwrap();
        g.cur.sweeps += 1;
        g.cur.requests += batch as u64;
        g.cur.busy += busy;
        *g.cur.batch_hist.entry(batch).or_insert(0) += 1;
        let busy_us = busy.as_micros() as u64;
        g.cur.compute.record_n(busy_us, batch as u64);
        for k in 0..batch {
            let w_us = queue_waits.get(k).map_or(0, |w| w.as_micros() as u64);
            g.cur.queue.record(w_us);
            g.cur.latency.record(w_us + busy_us);
            if let Some(exact) = &mut g.exact_latency_us {
                exact.push(w_us + busy_us);
            }
        }
    }

    /// Snapshot of everything recorded since construction (or the last
    /// [`Self::reset`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_cumulative(&self.inner.lock().unwrap().cur)
    }

    /// Snapshot of the **window** since the previous `snapshot_since_last`
    /// call (or since construction/reset for the first call), then advances
    /// the watermark. A scraper polling a long-lived service gets
    /// per-interval percentiles this way instead of ever-flattening
    /// lifetime aggregates; interleaved [`Self::snapshot`] calls are
    /// unaffected and keep reporting cumulative totals.
    pub fn snapshot_since_last(&self) -> MetricsSnapshot {
        let mut g = self.inner.lock().unwrap();
        let snap = MetricsSnapshot::from_parts(
            &g.cur.queue.diff(&g.last.queue),
            &g.cur.compute.diff(&g.last.compute),
            &g.cur.latency.diff(&g.last.latency),
            diff_batches(&g.cur.batch_hist, &g.last.batch_hist),
            g.cur.requests - g.last.requests,
            g.cur.sweeps - g.last.sweeps,
            g.cur.busy - g.last.busy,
        );
        g.last = Cumulative {
            queue: g.cur.queue.clone(),
            compute: g.cur.compute.clone(),
            latency: g.cur.latency.clone(),
            batch_hist: g.cur.batch_hist.clone(),
            requests: g.cur.requests,
            sweeps: g.cur.sweeps,
            busy: g.cur.busy,
        };
        snap
    }

    /// Clears all recorded measurements, the window watermark, and any
    /// retained exact samples (the retention mode itself stays on).
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        let keep_exact = g.exact_latency_us.is_some();
        *g = Inner::default();
        if keep_exact {
            g.exact_latency_us = Some(Vec::new());
        }
    }

    /// Opts into (or out of) retaining every end-to-end latency sample.
    /// Off by default — turning it on makes memory grow with the request
    /// count again, so it is strictly a benchmark/validation mode for
    /// comparing histogram quantiles against [`percentile`] ground truth.
    pub fn keep_exact_samples(&self, on: bool) {
        let mut g = self.inner.lock().unwrap();
        g.exact_latency_us = on.then(Vec::new);
    }

    /// The retained end-to-end latency samples, sorted ascending — `None`
    /// unless [`Self::keep_exact_samples`] is on.
    pub fn exact_latencies_us(&self) -> Option<Vec<u64>> {
        let g = self.inner.lock().unwrap();
        g.exact_latency_us.clone().map(|mut v| {
            v.sort_unstable();
            v
        })
    }

    /// Bytes held by the metric state. Constant in the number of recorded
    /// requests (three fixed-size histograms plus one entry per *distinct*
    /// batch size) unless exact-sample retention is on.
    pub fn footprint_bytes(&self) -> usize {
        let g = self.inner.lock().unwrap();
        let cum = |c: &Cumulative| {
            c.queue.footprint_bytes()
                + c.compute.footprint_bytes()
                + c.latency.footprint_bytes()
                + c.batch_hist.len() * std::mem::size_of::<(usize, u64)>()
        };
        cum(&g.cur)
            + cum(&g.last)
            + g.exact_latency_us
                .as_ref()
                .map_or(0, |v| v.capacity() * std::mem::size_of::<u64>())
    }

    /// The current snapshot in the Prometheus text exposition format (see
    /// [`MetricsSnapshot::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }
}

/// `cur − last` on the batch histogram, dropping emptied sizes.
fn diff_batches(cur: &BTreeMap<usize, u64>, last: &BTreeMap<usize, u64>) -> Vec<(usize, u64)> {
    cur.iter()
        .filter_map(|(&k, &v)| {
            let d = v - last.get(&k).copied().unwrap_or(0);
            (d > 0).then_some((k, d))
        })
        .collect()
}

/// Nearest-rank percentile over a sorted sample; 0 for an empty sample.
/// This is the exact reference the bounded histograms approximate — their
/// [`quantile`](LogLinearHistogram::quantile) uses the same rank
/// convention, so the two differ by less than one bucket width.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Point-in-time view of the service metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Fused sweeps executed.
    pub sweeps: u64,
    /// Median request latency (enqueue → result), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Median queue wait (enqueue → sweep start), microseconds.
    pub p50_queue_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub p99_queue_us: u64,
    /// Median compute time (the serving sweep), microseconds.
    pub p50_compute_us: u64,
    /// 99th-percentile compute time, microseconds.
    pub p99_compute_us: u64,
    /// Mean requests per fused sweep.
    pub mean_batch: f64,
    /// `(batch size, sweep count)` histogram, ascending batch size.
    pub batch_hist: Vec<(usize, u64)>,
    /// Total time spent inside fused sweeps, milliseconds.
    pub busy_ms: f64,
    /// Requests per second of sweep time.
    pub throughput_rps: f64,
    /// Full end-to-end latency distribution (µs).
    pub latency_hist: LogLinearHistogram,
    /// Full queue-wait distribution (µs).
    pub queue_hist: LogLinearHistogram,
    /// Full compute-time distribution (µs).
    pub compute_hist: LogLinearHistogram,
    /// Counter snapshot of the served operator's budgeted block cache
    /// (`None` when the operator runs without one). Populated by
    /// [`crate::MatvecService::metrics`]; raw [`ServiceMetrics::snapshot`]
    /// always leaves it `None`.
    pub cache: Option<CacheStats>,
}

impl MetricsSnapshot {
    fn from_cumulative(c: &Cumulative) -> Self {
        Self::from_parts(
            &c.queue,
            &c.compute,
            &c.latency,
            c.batch_hist.iter().map(|(&k, &v)| (k, v)).collect(),
            c.requests,
            c.sweeps,
            c.busy,
        )
    }

    fn from_parts(
        queue: &LogLinearHistogram,
        compute: &LogLinearHistogram,
        latency: &LogLinearHistogram,
        batch_hist: Vec<(usize, u64)>,
        requests: u64,
        sweeps: u64,
        busy: Duration,
    ) -> Self {
        let busy_s = busy.as_secs_f64();
        MetricsSnapshot {
            requests,
            sweeps,
            p50_latency_us: latency.quantile(0.50),
            p99_latency_us: latency.quantile(0.99),
            p50_queue_us: queue.quantile(0.50),
            p99_queue_us: queue.quantile(0.99),
            p50_compute_us: compute.quantile(0.50),
            p99_compute_us: compute.quantile(0.99),
            mean_batch: if sweeps == 0 {
                0.0
            } else {
                requests as f64 / sweeps as f64
            },
            batch_hist,
            busy_ms: busy_s * 1e3,
            throughput_rps: if busy_s > 0.0 {
                requests as f64 / busy_s
            } else {
                0.0
            },
            latency_hist: latency.clone(),
            queue_hist: queue.clone(),
            compute_hist: compute.clone(),
            cache: None,
        }
    }

    /// Serializes the snapshot in the Prometheus text exposition format:
    /// request/sweep/busy totals as counters, latency percentiles as
    /// `quantile`-labeled gauges (kept for dashboards pinned to them), the
    /// same distributions as **native Prometheus histograms**
    /// (`*_bucket{le=…}` / `*_sum` / `*_count`, occupied buckets only),
    /// and the batch histogram as one `batch`-labeled counter series per
    /// observed size.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE h2_serve_requests_total counter");
        let _ = writeln!(out, "h2_serve_requests_total {}", self.requests);
        let _ = writeln!(out, "# TYPE h2_serve_sweeps_total counter");
        let _ = writeln!(out, "h2_serve_sweeps_total {}", self.sweeps);
        let _ = writeln!(out, "# TYPE h2_serve_busy_seconds_total counter");
        let _ = writeln!(out, "h2_serve_busy_seconds_total {:.6}", self.busy_ms / 1e3);
        for (name, p50, p99) in [
            ("latency", self.p50_latency_us, self.p99_latency_us),
            ("queue", self.p50_queue_us, self.p99_queue_us),
            ("compute", self.p50_compute_us, self.p99_compute_us),
        ] {
            let _ = writeln!(out, "# TYPE h2_serve_{name}_microseconds gauge");
            let _ = writeln!(
                out,
                "h2_serve_{name}_microseconds{{quantile=\"0.5\"}} {p50}"
            );
            let _ = writeln!(
                out,
                "h2_serve_{name}_microseconds{{quantile=\"0.99\"}} {p99}"
            );
        }
        for (name, hist) in [
            ("latency", &self.latency_hist),
            ("queue", &self.queue_hist),
            ("compute", &self.compute_hist),
        ] {
            let _ = writeln!(out, "# TYPE h2_serve_{name}_us histogram");
            for (le, cum) in hist.cumulative_buckets() {
                let _ = writeln!(out, "h2_serve_{name}_us_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(
                out,
                "h2_serve_{name}_us_bucket{{le=\"+Inf\"}} {}",
                hist.count()
            );
            let _ = writeln!(out, "h2_serve_{name}_us_sum {}", hist.sum());
            let _ = writeln!(out, "h2_serve_{name}_us_count {}", hist.count());
        }
        let _ = writeln!(out, "# TYPE h2_serve_batch_sweeps_total counter");
        for &(batch, count) in &self.batch_hist {
            let _ = writeln!(
                out,
                "h2_serve_batch_sweeps_total{{batch=\"{batch}\"}} {count}"
            );
        }
        let _ = writeln!(out, "# TYPE h2_serve_throughput_rps gauge");
        let _ = writeln!(out, "h2_serve_throughput_rps {:.3}", self.throughput_rps);
        if let Some(c) = &self.cache {
            for (name, value) in [
                ("hits_total", c.hits),
                ("misses_total", c.misses),
                ("evictions_total", c.evictions),
                ("evicted_bytes_total", c.evicted_bytes),
                ("rejected_total", c.rejected),
                ("stale_purged_total", c.stale_purged),
            ] {
                let _ = writeln!(out, "# TYPE h2_serve_cache_{name} counter");
                let _ = writeln!(out, "h2_serve_cache_{name} {value}");
            }
            for (name, value) in [
                ("resident_bytes", c.resident_bytes),
                ("pinned_bytes", c.pinned_bytes),
                ("budget_bytes", c.budget_bytes),
                ("entries", c.entries),
            ] {
                let _ = writeln!(out, "# TYPE h2_serve_cache_{name} gauge");
                let _ = writeln!(out, "h2_serve_cache_{name} {value}");
            }
            let _ = writeln!(out, "# TYPE h2_serve_cache_hit_rate gauge");
            let _ = writeln!(out, "h2_serve_cache_hit_rate {:.4}", c.hit_rate());
        }
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {} sweeps (mean batch {:.2}), p50 {} us (queue {} + compute {}), \
             p99 {} us (queue {} + compute {}), busy {:.1} ms, {:.0} req/s, batches [",
            self.requests,
            self.sweeps,
            self.mean_batch,
            self.p50_latency_us,
            self.p50_queue_us,
            self.p50_compute_us,
            self.p99_latency_us,
            self.p99_queue_us,
            self.p99_compute_us,
            self.busy_ms,
            self.throughput_rps
        )?;
        for (k, &(batch, count)) in self.batch_hist.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{batch}x{count}")?;
        }
        write!(f, "]")?;
        if let Some(c) = &self.cache {
            write!(
                f,
                ", cache {:.0}% hit ({}/{} KiB resident)",
                c.hit_rate() * 100.0,
                c.resident_bytes / 1024,
                c.budget_bytes / 1024
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::bucket_width;

    /// Inclusive upper bound of the histogram bucket holding `v` — the
    /// value a histogram quantile reports for a sample of `v`.
    fn ub(v: u64) -> u64 {
        let mut h = LogLinearHistogram::new();
        h.record(v);
        h.quantile(1.0)
    }

    #[test]
    fn percentiles_and_histogram() {
        let m = ServiceMetrics::new();
        // Two sweeps: batch 3 (2 ms busy) then batch 1 (1 ms busy).
        m.record_sweep(
            3,
            Duration::from_millis(2),
            &[
                Duration::from_micros(100),
                Duration::from_micros(200),
                Duration::from_micros(300),
            ],
        );
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(400)]);
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.sweeps, 2);
        assert_eq!(s.mean_batch, 2.0);
        assert_eq!(s.batch_hist, vec![(1, 1), (3, 1)]);
        // Queue waits: [100, 200, 300, 400]; compute: [2000, 2000, 2000,
        // 1000]; end-to-end: [2100, 2200, 2300, 1400]. Quantiles report
        // the bucket upper bound of the exact nearest-rank sample.
        assert_eq!(s.p50_queue_us, ub(300));
        assert_eq!(s.p99_queue_us, ub(400));
        assert_eq!(s.p50_compute_us, ub(2000));
        assert_eq!(s.p99_compute_us, ub(2000));
        assert_eq!(s.p50_latency_us, ub(2200));
        assert_eq!(s.p99_latency_us, ub(2300));
        assert!((s.busy_ms - 3.0).abs() < 1e-9);
        assert!(s.throughput_rps > 0.0);
        assert_eq!(s.latency_hist.count(), 4);
        assert_eq!(s.queue_hist.count(), 4);
        assert_eq!(s.compute_hist.count(), 4);
    }

    #[test]
    fn latency_is_queue_plus_compute_within_a_bucket() {
        let m = ServiceMetrics::new();
        m.record_sweep(
            2,
            Duration::from_micros(500),
            &[Duration::from_micros(10), Duration::from_micros(20)],
        );
        let s = m.snapshot();
        assert_eq!(s.p99_latency_us, ub(520));
        assert_eq!(s.p99_queue_us, 20, "values below 2*SUB_BUCKETS are exact");
        assert_eq!(s.p99_compute_us, ub(500));
        assert!(s.p99_latency_us.abs_diff(520) < bucket_width(520));
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p50_queue_us, 0);
        assert_eq!(s.p50_compute_us, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert!(s.latency_hist.is_empty());
    }

    #[test]
    fn reset_clears() {
        let m = ServiceMetrics::new();
        m.record_sweep(2, Duration::from_millis(1), &[Duration::from_micros(5); 2]);
        m.reset();
        assert_eq!(m.snapshot().requests, 0);
    }

    #[test]
    fn snapshot_since_last_windows_the_stream() {
        let m = ServiceMetrics::new();
        m.record_sweep(1, Duration::from_micros(100), &[Duration::from_micros(5)]);
        m.record_sweep(1, Duration::from_micros(100), &[Duration::from_micros(5)]);
        let w1 = m.snapshot_since_last();
        assert_eq!(w1.requests, 2);
        assert_eq!(w1.p50_latency_us, ub(105));
        // A much slower second interval: the window sees only it, while the
        // cumulative snapshot keeps mixing both.
        m.record_sweep(
            1,
            Duration::from_micros(90_000),
            &[Duration::from_micros(5)],
        );
        let w2 = m.snapshot_since_last();
        assert_eq!(w2.requests, 1);
        assert_eq!(w2.sweeps, 1);
        assert_eq!(w2.p50_latency_us, ub(90_005));
        assert_eq!(w2.batch_hist, vec![(1, 1)]);
        assert!((w2.busy_ms - 90.0).abs() < 1e-6);
        let cum = m.snapshot();
        assert_eq!(cum.requests, 3);
        assert_eq!(cum.p50_latency_us, ub(105));
        // An empty interval is all zeros, not leftovers.
        let w3 = m.snapshot_since_last();
        assert_eq!(w3.requests, 0);
        assert_eq!(w3.p50_latency_us, 0);
        assert!(w3.batch_hist.is_empty());
    }

    #[test]
    fn memory_is_constant_in_the_request_count() {
        let m = ServiceMetrics::new();
        m.record_sweep(
            4,
            Duration::from_micros(100),
            &[Duration::from_micros(7); 4],
        );
        let small = m.footprint_bytes();
        // 100_000+ requests over wildly varying latencies: same footprint.
        for k in 0..25_000u64 {
            let waits = [Duration::from_micros(k % 10_000); 4];
            m.record_sweep(4, Duration::from_micros(10 + k % 1_000), &waits);
        }
        assert_eq!(m.snapshot().requests, 100_004);
        assert_eq!(
            m.footprint_bytes(),
            small,
            "per-request state must not grow with traffic"
        );
        // The opt-in exact mode is the one allowed to grow.
        m.keep_exact_samples(true);
        m.record_sweep(
            4,
            Duration::from_micros(100),
            &[Duration::from_micros(7); 4],
        );
        assert!(m.footprint_bytes() > small);
        assert_eq!(m.exact_latencies_us().unwrap().len(), 4);
    }

    #[test]
    fn exact_samples_validate_histogram_quantiles() {
        let m = ServiceMetrics::new();
        m.keep_exact_samples(true);
        let mut x = 42u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.record_sweep(
                1,
                Duration::from_micros(x % 50_000),
                &[Duration::from_micros((x >> 32) % 5_000)],
            );
        }
        let exact = m.exact_latencies_us().unwrap();
        assert_eq!(exact.len(), 500);
        let s = m.snapshot();
        for (q, got) in [(0.5, s.p50_latency_us), (0.99, s.p99_latency_us)] {
            let e = percentile(&exact, q);
            assert!(
                got.abs_diff(e) < bucket_width(e.max(got)),
                "q={q}: hist {got} vs exact {e}"
            );
        }
        m.keep_exact_samples(false);
        assert!(m.exact_latencies_us().is_none());
    }

    #[test]
    fn mismatched_wait_list_is_reconciled() {
        let m = ServiceMetrics::new();
        // Short list: the missing wait counts as zero.
        m.record_sweep(3, Duration::from_micros(100), &[Duration::from_micros(50)]);
        // Long list: the extra wait is ignored.
        m.record_sweep(
            1,
            Duration::from_micros(100),
            &[Duration::from_micros(10), Duration::from_micros(999)],
        );
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.sweeps, 2);
        // Exactly one latency sample per request, never more or fewer.
        assert_eq!(s.p99_queue_us, ub(50), "extras ignored, missing are zero");
        assert_eq!(s.p99_latency_us, ub(150));
        assert_eq!(s.queue_hist.count(), 4);
    }

    #[test]
    fn display_includes_busy_and_batch_histogram() {
        let m = ServiceMetrics::new();
        m.record_sweep(2, Duration::from_millis(3), &[Duration::from_micros(5); 2]);
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(5)]);
        let text = m.snapshot().to_string();
        assert!(text.contains("busy 4.0 ms"), "missing busy_ms in: {text}");
        assert!(
            text.contains("batches [1x1 2x1]"),
            "missing batch histogram in: {text}"
        );
    }

    #[test]
    fn prometheus_text_exposes_all_series() {
        let m = ServiceMetrics::new();
        m.record_sweep(
            2,
            Duration::from_millis(2),
            &[Duration::from_micros(100), Duration::from_micros(300)],
        );
        let text = m.prometheus_text();
        assert!(text.contains("# TYPE h2_serve_requests_total counter\n"));
        assert!(text.contains("h2_serve_requests_total 2\n"));
        assert!(text.contains("h2_serve_sweeps_total 1\n"));
        assert!(text.contains("h2_serve_busy_seconds_total 0.002000\n"));
        // Nearest-rank p50 over two samples rounds up to the larger one.
        assert!(text.contains(&format!(
            "h2_serve_latency_microseconds{{quantile=\"0.5\"}} {}\n",
            ub(2300)
        )));
        assert!(text.contains(&format!(
            "h2_serve_queue_microseconds{{quantile=\"0.99\"}} {}\n",
            ub(300)
        )));
        assert!(text.contains(&format!(
            "h2_serve_compute_microseconds{{quantile=\"0.5\"}} {}\n",
            ub(2000)
        )));
        assert!(text.contains("h2_serve_batch_sweeps_total{batch=\"2\"} 1\n"));
        assert!(text.contains("# TYPE h2_serve_throughput_rps gauge\n"));
        // Native histogram exposition: cumulative buckets, +Inf, sum/count.
        assert!(text.contains("# TYPE h2_serve_latency_us histogram\n"));
        assert!(text.contains(&format!(
            "h2_serve_queue_us_bucket{{le=\"{}\"}} 1\n",
            ub(100)
        )));
        assert!(text.contains(&format!(
            "h2_serve_queue_us_bucket{{le=\"{}\"}} 2\n",
            ub(300)
        )));
        assert!(text.contains("h2_serve_queue_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("h2_serve_queue_us_sum 400\n"));
        assert!(text.contains("h2_serve_queue_us_count 2\n"));
        assert!(text.contains("h2_serve_latency_us_count 2\n"));
        assert!(text.contains("h2_serve_compute_us_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn cache_series_appear_only_when_stats_attached() {
        let m = ServiceMetrics::new();
        m.record_sweep(1, Duration::from_millis(1), &[Duration::from_micros(5)]);
        let mut s = m.snapshot();
        assert!(s.cache.is_none(), "raw snapshot never carries cache stats");
        assert!(!s.prometheus_text().contains("h2_serve_cache"));
        s.cache = Some(CacheStats {
            hits: 90,
            misses: 10,
            insertions: 12,
            evictions: 2,
            evicted_bytes: 4096,
            rejected: 1,
            stale_purged: 3,
            entries: 10,
            resident_bytes: 2048,
            pinned_bytes: 1024,
            budget_bytes: 8192,
        });
        let text = s.prometheus_text();
        assert!(text.contains("# TYPE h2_serve_cache_hits_total counter\n"));
        assert!(text.contains("h2_serve_cache_hits_total 90\n"));
        assert!(text.contains("h2_serve_cache_misses_total 10\n"));
        assert!(text.contains("h2_serve_cache_evicted_bytes_total 4096\n"));
        assert!(text.contains("h2_serve_cache_stale_purged_total 3\n"));
        assert!(text.contains("h2_serve_cache_resident_bytes 2048\n"));
        assert!(text.contains("h2_serve_cache_budget_bytes 8192\n"));
        assert!(text.contains("h2_serve_cache_hit_rate 0.9000\n"));
        assert!(
            s.to_string().contains("cache 90% hit (2/8 KiB resident)"),
            "display line: {s}"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0, "empty sample is zero");
        assert_eq!(percentile(&[7], 0.0), 7, "single sample at q=0");
        assert_eq!(percentile(&[7], 0.5), 7, "single sample at q=0.5");
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[7], 1.0), 7, "single sample at q=1");
        let v: Vec<u64> = (1..=101).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 101);
        assert_eq!(percentile(&v, 0.5), 51);
    }

    #[test]
    fn histogram_quantile_edge_cases_match_percentile() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram is zero");
        let mut h = LogLinearHistogram::new();
        h.record(7);
        // 7 < SUB_BUCKETS, so the lone sample is exact at every q.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), percentile(&[7], q));
        }
        let mut h = LogLinearHistogram::new();
        let v: Vec<u64> = (1..=101).collect();
        for &x in &v {
            h.record(x);
        }
        for q in [0.0, 0.5, 1.0] {
            let e = percentile(&v, q);
            assert!(h.quantile(q).abs_diff(e) < bucket_width(e));
        }
    }
}
