//! Re-export shim: the log-linear histogram moved to [`h2_telemetry::hist`]
//! so the tenant scheduler (`h2-tenant`) and other crates can record latency
//! distributions without depending on the serving stack. Existing
//! `h2_serve::hist::*` paths keep working through this shim.

pub use h2_telemetry::hist::*;
