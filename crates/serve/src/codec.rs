//! Versioned binary persistence codec for built [`H2MatrixS`] operators.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "H2SERVE\0" (8 bytes) | format version (u32)
//! then a sequence of sections, each:
//!   tag (u8) | payload length (u64) | payload | FNV-1a 64 checksum of payload
//! ```
//!
//! Sections, in order: **fingerprint** (memory mode, scalar-type code,
//! eta, dimension, kernel name + probe values), **tree** (points,
//! permutation, node arena), **generators** (ranks, bases, transfers,
//! proxies), then — normal mode only — **coupling** and **nearfield** dense
//! block sequences, and an empty **end** marker. On-the-fly files simply
//! omit the two dense-block sections, which is what makes them ~10×
//! smaller: they carry only the tree and the skeleton/grid generators,
//! mirroring the paper's memory-mode split.
//!
//! Format version 2 made the codec precision-generic: the fingerprint
//! carries the storage scalar's code (`Scalar::CODE`, 4 for `f32` / 8 for
//! `f64`) and every generator/block entry is written at the operator's own
//! width, so `f32` files are roughly half the size. The scalar byte sits
//! inside the checksummed fingerprint section, and [`decode`] rejects a
//! width the caller did not ask for with the typed
//! [`LoadError::PrecisionMismatch`] — the codec never converts silently.
//!
//! Format version 3 (this build) adds a **provenance byte** right after the
//! scalar byte: which construction pipeline produced the operator
//! ([`h2_core::BuilderProvenance`] — anchor-net, sketched, interpolation,
//! proxy-surface). Provenance is pure metadata: unknown codes are surfaced
//! as `unknown(code)` and never rejected, so files written by newer builds
//! with new builders still load. Peek at it without a full decode via
//! [`stored_builder`]. Version-1/2 blobs are refused with
//! [`LoadError::UnsupportedVersion`].
//!
//! Dynamic-operator builds additionally append the operator's **update
//! epoch** (a `u64`, see `h2_core::update`) after the probe values, still
//! inside the checksummed fingerprint section. The field is optional on
//! read: v3 files written before epochs existed simply end after the
//! probes and load with epoch 0, so the extension is fully backward and
//! forward compatible within version 3.
//!
//! Format version 4 (this build's canonical writer) restructures the file
//! for **zero-copy `mmap` loading**. The fingerprint and tree sections are
//! byte-identical to v3, but matrix payloads move out of the sections into
//! a trailing **slab region**:
//!
//! ```text
//! magic | version=4
//! fingerprint | tree | generators-meta (ranks + proxies, no matrices)
//! directory (per matrix family: slab offset/len/checksum + shapes)
//! end | zero padding to a 64-byte boundary
//! slab region: one little-endian column-major slab per family
//!              (bases, transfers, then — normal mode — coupling, nearfield),
//!              every family and every matrix start 64-byte aligned
//! ```
//!
//! Because every matrix payload sits at a 64-byte-aligned file offset and
//! `mmap` maps files page-aligned, a mapped v4 file can be read *in place*:
//! [`load_mmap`] wraps the mapping in [`h2_cache::BlockSlabs`] views and
//! hands the same `MatrixS` values to the same sweeps, so the mmap path is
//! bitwise-identical to the owned decode by construction. The owned
//! [`decode`] still reads both v3 and v4; [`encode`] writes v4 and
//! [`encode_v3`] keeps the legacy writer for cross-version tests. Slab
//! checksums are verified on the owned path only — verifying them on the
//! mmap path would fault in every page and defeat lazy loading.
//!
//! Block lists are *not* stored: they are a deterministic function of the
//! tree and `eta`, recomputed at load (`H2Matrix::from_parts`), which also
//! guarantees the dense-block sequences align with the recomputed pair
//! lists.
//!
//! Every decoding path is bounds-checked and returns [`LoadError`] — a
//! truncated, bit-flipped, or adversarially wrong file must never panic.

use crate::error::LoadError;
use h2_cache::{BlockSlabs, SlabBlock};
use h2_core::proxy::ProxyPoints;
use h2_core::{BuilderProvenance, H2MatrixS, H2Parts, MemoryMode};
use h2_dist::wire::{WireReader, WireWriter};
use h2_kernels::Kernel;
use h2_linalg::{MatrixS, Scalar, SlabMem};
use h2_points::tree::Node;
use h2_points::{BoundingBox, ClusterTree, PointSet};
use std::path::Path;
use std::sync::Arc;

/// File magic: identifies h2-serve operator files.
pub const MAGIC: [u8; 8] = *b"H2SERVE\0";
/// Codec format version this build writes. Version 2 added the
/// scalar-type byte to the fingerprint and precision-generic payloads;
/// version 3 added the builder-provenance byte next to the scalar byte;
/// version 4 moved matrix payloads into an aligned, `mmap`able slab region
/// behind a checksummed directory.
pub const FORMAT_VERSION: u32 = 4;
/// The previous, payload-in-section format. Still fully readable; written
/// only by [`encode_v3`].
pub const LEGACY_FORMAT_VERSION: u32 = 3;
/// Alignment (bytes) of the v4 slab region, each family slab, and each
/// matrix payload within its slab. 64 covers every scalar width this crate
/// serves plus cache-line alignment for the apply kernels.
pub const SLAB_ALIGN: usize = 64;

const TAG_FINGERPRINT: u8 = 1;
const TAG_TREE: u8 = 2;
const TAG_GENERATORS: u8 = 3;
const TAG_COUPLING: u8 = 4;
const TAG_NEARFIELD: u8 = 5;
const TAG_END: u8 = 6;
const TAG_GENERATORS_META: u8 = 7;
const TAG_DIRECTORY: u8 = 8;

/// Matrix families in the v4 directory, in slab order.
const FAMILY_BASES: u8 = 0;
const FAMILY_TRANSFERS: u8 = 1;
const FAMILY_COUPLING: u8 = 2;
const FAMILY_NEARFIELD: u8 = 3;

fn family_name(kind: u8) -> &'static str {
    match kind {
        FAMILY_BASES => "bases",
        FAMILY_TRANSFERS => "transfers",
        FAMILY_COUPLING => "coupling",
        FAMILY_NEARFIELD => "nearfield",
        _ => "unknown",
    }
}

fn align_up(x: usize, align: usize) -> usize {
    x.div_ceil(align) * align
}

/// Number of deterministic kernel probe evaluations in the fingerprint.
const PROBE_COUNT: usize = 4;

fn section_name(tag: u8) -> &'static str {
    match tag {
        TAG_FINGERPRINT => "fingerprint",
        TAG_TREE => "tree",
        TAG_GENERATORS => "generators",
        TAG_COUPLING => "coupling",
        TAG_NEARFIELD => "nearfield",
        TAG_END => "end",
        TAG_GENERATORS_META => "generators-meta",
        TAG_DIRECTORY => "directory",
        _ => "unknown",
    }
}

/// Maps a stored `Scalar::CODE` byte back to the scalar's name.
fn scalar_name(code: u8) -> Option<&'static str> {
    match code {
        x if x == f32::CODE => Some(f32::NAME),
        x if x == f64::CODE => Some(f64::NAME),
        _ => None,
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic kernel fingerprint: evaluations at fixed synthetic point
/// pairs inside the unit cube. Stored bit-exact, so a kernel of the same
/// name but different parameters (e.g. a different bandwidth) is rejected
/// at load time.
fn probe_values(kernel: &dyn Kernel, dim: usize) -> [f64; PROBE_COUNT] {
    let mut out = [0.0; PROBE_COUNT];
    for (k, v) in out.iter_mut().enumerate() {
        let x: Vec<f64> = (0..dim)
            .map(|j| 0.12 + 0.05 * k as f64 + 0.031 * j as f64)
            .collect();
        let y: Vec<f64> = (0..dim)
            .map(|j| 0.83 - 0.04 * k as f64 - 0.017 * j as f64)
            .collect();
        *v = kernel.eval(&x, &y);
    }
    out
}

// ---------------------------------------------------------------- encoding

/// Section payload writer: the shared little-endian primitives
/// ([`h2_dist::wire::WireWriter`], the same codec the socket frames use)
/// plus this codec's composite shapes (matrices, point sets).
struct Enc {
    w: WireWriter,
}

impl Enc {
    fn new() -> Self {
        Enc {
            w: WireWriter::new(),
        }
    }
    fn u8(&mut self, v: u8) {
        self.w.u8(v);
    }
    fn u32(&mut self, v: u32) {
        self.w.u32(v);
    }
    fn u64(&mut self, v: u64) {
        self.w.u64(v);
    }
    fn usize(&mut self, v: usize) {
        self.w.usize(v);
    }
    fn f64(&mut self, v: f64) {
        self.w.f64(v);
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.w.f64s(vs);
    }
    fn scalars<S: Scalar>(&mut self, vs: &[S]) {
        self.w.scalars(vs);
    }
    fn str(&mut self, s: &str) {
        self.w.str(s);
    }
    fn matrix<S: Scalar>(&mut self, m: &MatrixS<S>) {
        self.usize(m.nrows());
        self.usize(m.ncols());
        self.scalars(m.as_slice());
    }
    fn pointset(&mut self, p: &PointSet) {
        self.u32(p.dim() as u32);
        self.usize(p.len());
        self.f64s(p.coords());
    }
    fn into_bytes(self) -> Vec<u8> {
        self.w.into_bytes()
    }
}

fn encode_fingerprint<S: Scalar>(h2: &H2MatrixS<S>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(match h2.mode() {
        MemoryMode::Normal => 0,
        MemoryMode::OnTheFly => 1,
    });
    e.u8(S::CODE);
    e.u8(h2.provenance().code());
    e.f64(h2.lists().eta);
    e.u32(h2.dim() as u32);
    e.str(h2.kernel().name());
    e.u8(PROBE_COUNT as u8);
    e.f64s(&probe_values(h2.kernel(), h2.dim()));
    // Update epoch: appended last so pre-epoch v3 readers (which stop at
    // the probes) and pre-epoch v3 files (which omit it) both keep working.
    e.u64(h2.epoch());
    e.into_bytes()
}

fn encode_tree(tree: &ClusterTree) -> Vec<u8> {
    let mut e = Enc::new();
    e.pointset(tree.points());
    for &p in tree.perm() {
        e.usize(p);
    }
    e.usize(tree.node_count());
    for nd in tree.nodes() {
        e.usize(nd.start);
        e.usize(nd.end);
        e.u32(nd.level as u32);
        e.u64(nd.parent.map_or(u64::MAX, |p| p as u64));
        e.u8(nd.children.len() as u8);
        for &c in &nd.children {
            e.usize(c);
        }
        e.f64s(nd.bbox.lo());
        e.f64s(nd.bbox.hi());
    }
    e.into_bytes()
}

fn encode_generators<S: Scalar>(parts: &H2Parts<S>) -> Vec<u8> {
    let mut e = Enc::new();
    let n_nodes = parts.ranks.len();
    e.usize(n_nodes);
    for &r in &parts.ranks {
        e.usize(r);
    }
    for m in &parts.bases {
        e.matrix(m);
    }
    for m in &parts.transfers {
        e.matrix(m);
    }
    for p in &parts.proxies {
        match p {
            ProxyPoints::Indices(idx) => {
                e.u8(0);
                e.usize(idx.len());
                for &i in idx {
                    e.usize(i);
                }
            }
            ProxyPoints::Coords(pts) => {
                e.u8(1);
                e.pointset(pts);
            }
        }
    }
    e.into_bytes()
}

fn encode_blocks<S: Scalar>(blocks: &[MatrixS<S>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(blocks.len());
    for m in blocks {
        e.matrix(m);
    }
    e.into_bytes()
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Ranks and proxies without the matrix payloads: the v4 counterpart of
/// the v3 generators section (matrices live in the slab region, their
/// shapes in the directory).
fn encode_generators_meta<S: Scalar>(parts: &H2Parts<S>) -> Vec<u8> {
    let mut e = Enc::new();
    let n_nodes = parts.ranks.len();
    e.usize(n_nodes);
    for &r in &parts.ranks {
        e.usize(r);
    }
    for p in &parts.proxies {
        match p {
            ProxyPoints::Indices(idx) => {
                e.u8(0);
                e.usize(idx.len());
                for &i in idx {
                    e.usize(i);
                }
            }
            ProxyPoints::Coords(pts) => {
                e.u8(1);
                e.pointset(pts);
            }
        }
    }
    e.into_bytes()
}

/// One matrix family in the v4 directory: where its slab sits (relative to
/// the aligned slab-region base), its checksum, and each matrix's shape and
/// offset within the slab.
struct DirFamily {
    kind: u8,
    slab_off: usize,
    slab_len: usize,
    checksum: u64,
    entries: Vec<SlabBlock>,
}

/// Lays one family out: 64-aligned matrix offsets relative to the family
/// slab base, returning the entries and the (aligned) slab length.
fn layout_family<S: Scalar>(mats: &[MatrixS<S>]) -> (Vec<SlabBlock>, usize) {
    let mut entries = Vec::with_capacity(mats.len());
    let mut cursor = 0usize;
    for m in mats {
        entries.push(SlabBlock {
            nrows: m.nrows(),
            ncols: m.ncols(),
            offset: cursor,
        });
        cursor = align_up(cursor + m.nrows() * m.ncols() * S::BYTES, SLAB_ALIGN);
    }
    (entries, cursor)
}

fn encode_directory(families: &[DirFamily]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(families.len() as u8);
    for f in families {
        e.u8(f.kind);
        e.usize(f.slab_off);
        e.usize(f.slab_len);
        e.u64(f.checksum);
        e.usize(f.entries.len());
        for b in &f.entries {
            e.usize(b.nrows);
            e.usize(b.ncols);
            e.usize(b.offset);
        }
    }
    e.into_bytes()
}

/// Serializes a built operator into the current (v4, `mmap`able) binary
/// format, at the operator's own storage precision.
pub fn encode<S: Scalar>(h2: &H2MatrixS<S>) -> Vec<u8> {
    let parts = h2.to_parts();

    // Pass 1: lay the families out and compute slab offsets/checksums.
    let mut family_mats: Vec<(u8, &[MatrixS<S>])> = vec![
        (FAMILY_BASES, parts.bases.as_slice()),
        (FAMILY_TRANSFERS, parts.transfers.as_slice()),
    ];
    if let Some(cb) = &parts.coupling_blocks {
        family_mats.push((FAMILY_COUPLING, cb.as_slice()));
    }
    if let Some(nb) = &parts.nearfield_blocks {
        family_mats.push((FAMILY_NEARFIELD, nb.as_slice()));
    }
    let mut families = Vec::with_capacity(family_mats.len());
    let mut cursor = 0usize;
    for &(kind, mats) in &family_mats {
        let (entries, slab_len) = layout_family(mats);
        families.push(DirFamily {
            kind,
            slab_off: cursor,
            slab_len,
            checksum: 0, // filled in after the slab region is serialized
            entries,
        });
        cursor = align_up(cursor + slab_len, SLAB_ALIGN);
    }

    // Serialize the slab region (zeros between matrices are the alignment
    // padding — deterministic, so the family checksums cover them too).
    let mut slab = vec![0u8; cursor];
    for (f, &(_, mats)) in families.iter_mut().zip(&family_mats) {
        for (b, m) in f.entries.iter().zip(mats) {
            let mut payload = Vec::with_capacity(m.nrows() * m.ncols() * S::BYTES);
            for &v in m.as_slice() {
                v.write_le(&mut payload);
            }
            let at = f.slab_off + b.offset;
            slab[at..at + payload.len()].copy_from_slice(&payload);
        }
        f.checksum = fnv1a64(&slab[f.slab_off..f.slab_off + f.slab_len]);
    }

    // Pass 2: header sections, padded so the slab region lands 64-aligned.
    // Directory offsets are relative to that aligned base, which is why the
    // header's own length never perturbs them.
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    push_section(&mut out, TAG_FINGERPRINT, &encode_fingerprint(h2));
    push_section(&mut out, TAG_TREE, &encode_tree(&parts.tree));
    push_section(
        &mut out,
        TAG_GENERATORS_META,
        &encode_generators_meta(&parts),
    );
    push_section(&mut out, TAG_DIRECTORY, &encode_directory(&families));
    push_section(&mut out, TAG_END, &[]);
    out.resize(align_up(out.len(), SLAB_ALIGN), 0);
    out.extend_from_slice(&slab);
    out
}

/// Serializes a built operator in the legacy v3 (payload-in-section)
/// format. Kept so cross-version compatibility is tested against real v3
/// bytes rather than hand-crafted ones; new files should use [`encode`].
pub fn encode_v3<S: Scalar>(h2: &H2MatrixS<S>) -> Vec<u8> {
    let parts = h2.to_parts();
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&LEGACY_FORMAT_VERSION.to_le_bytes());
    push_section(&mut out, TAG_FINGERPRINT, &encode_fingerprint(h2));
    push_section(&mut out, TAG_TREE, &encode_tree(&parts.tree));
    push_section(&mut out, TAG_GENERATORS, &encode_generators(&parts));
    if let Some(cb) = &parts.coupling_blocks {
        push_section(&mut out, TAG_COUPLING, &encode_blocks(cb));
    }
    if let Some(nb) = &parts.nearfield_blocks {
        push_section(&mut out, TAG_NEARFIELD, &encode_blocks(nb));
    }
    push_section(&mut out, TAG_END, &[]);
    out
}

/// Saves an operator to `path`; returns the number of bytes written.
pub fn save<S: Scalar>(h2: &H2MatrixS<S>, path: impl AsRef<Path>) -> std::io::Result<u64> {
    let bytes = encode(h2);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked reader over one section's payload: the shared
/// [`h2_dist::wire::WireReader`] primitives, with every wire-level
/// failure mapped to [`LoadError::CorruptSection`] naming the section,
/// plus this codec's composite shapes.
struct Dec<'a> {
    r: WireReader<'a>,
    section: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Dec {
            r: WireReader::new(buf),
            section,
        }
    }

    fn corrupt(&self, reason: impl Into<String>) -> LoadError {
        LoadError::CorruptSection {
            section: self.section,
            reason: reason.into(),
        }
    }

    fn wrap<T>(&self, r: Result<T, h2_dist::wire::WireError>) -> Result<T, LoadError> {
        r.map_err(|e| self.corrupt(e.to_string()))
    }

    fn remaining(&self) -> usize {
        self.r.remaining()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let r = self.r.take(n);
        self.wrap(r)
    }

    fn u8(&mut self) -> Result<u8, LoadError> {
        let r = self.r.u8();
        self.wrap(r)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        let r = self.r.u32();
        self.wrap(r)
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        let r = self.r.u64();
        self.wrap(r)
    }

    fn usize(&mut self) -> Result<usize, LoadError> {
        let r = self.r.usize();
        self.wrap(r)
    }

    /// A `usize` that will be used as an element count of `elem_bytes`-sized
    /// items: rejected unless the remaining payload can actually hold it,
    /// which both catches truncation early and prevents huge bogus
    /// allocations from corrupt length fields.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, LoadError> {
        let r = self.r.count(elem_bytes);
        self.wrap(r)
    }

    fn f64(&mut self) -> Result<f64, LoadError> {
        let r = self.r.f64();
        self.wrap(r)
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, LoadError> {
        let r = self.r.f64s(n);
        self.wrap(r)
    }

    fn scalars<S: Scalar>(&mut self, n: usize) -> Result<Vec<S>, LoadError> {
        let r = self.r.scalars(n);
        self.wrap(r)
    }

    fn str(&mut self) -> Result<String, LoadError> {
        let r = self.r.str();
        self.wrap(r)
    }

    fn matrix<S: Scalar>(&mut self) -> Result<MatrixS<S>, LoadError> {
        let nrows = self.usize()?;
        let ncols = self.usize()?;
        let cnt = nrows
            .checked_mul(ncols)
            .ok_or_else(|| self.corrupt("matrix shape overflows"))?;
        if cnt
            .checked_mul(S::BYTES)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(self.corrupt(format!("matrix {nrows}x{ncols} larger than payload")));
        }
        Ok(MatrixS::from_col_major(nrows, ncols, self.scalars(cnt)?))
    }

    fn pointset(&mut self) -> Result<PointSet, LoadError> {
        let dim = self.u32()? as usize;
        if dim == 0 || dim > 64 {
            return Err(self.corrupt(format!("implausible dimension {dim}")));
        }
        let n = self.count(dim * 8)?;
        let coords = self.f64s(n * dim)?;
        Ok(PointSet::new(dim, coords))
    }

    fn finish(&self) -> Result<(), LoadError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

fn decode_tree(payload: &[u8]) -> Result<ClusterTree, LoadError> {
    let mut d = Dec::new(payload, "tree");
    let points = d.pointset()?;
    let n = points.len();
    let dim = points.dim();
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        perm.push(d.usize()?);
    }
    let n_nodes = d.count(8 + 8 + 4 + 8 + 1 + 2 * dim * 8)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let start = d.usize()?;
        let end = d.usize()?;
        let level = d.u32()? as usize;
        let parent = match d.u64()? {
            u64::MAX => None,
            p => Some(usize::try_from(p).map_err(|_| d.corrupt("parent id exceeds usize"))?),
        };
        let n_children = d.u8()? as usize;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(d.usize()?);
        }
        let lo = d.f64s(dim)?;
        let hi = d.f64s(dim)?;
        // NaN corners fail this comparison too, so BoundingBox::new's
        // (debug) precondition can never trip on decoded data.
        if !lo.iter().zip(&hi).all(|(l, h)| l <= h) {
            return Err(d.corrupt("inverted or NaN bounding box"));
        }
        nodes.push(Node {
            start,
            end,
            children,
            parent,
            level,
            bbox: BoundingBox::new(lo, hi),
        });
    }
    d.finish()?;
    ClusterTree::from_parts(points, perm, nodes).map_err(LoadError::Inconsistent)
}

struct Generators<S: Scalar> {
    ranks: Vec<usize>,
    bases: Vec<MatrixS<S>>,
    transfers: Vec<MatrixS<S>>,
    proxies: Vec<ProxyPoints>,
}

fn decode_generators<S: Scalar>(payload: &[u8]) -> Result<Generators<S>, LoadError> {
    let mut d = Dec::new(payload, "generators");
    let n_nodes = d.count(8)?;
    let mut ranks = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        ranks.push(d.usize()?);
    }
    let mut bases = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        bases.push(d.matrix()?);
    }
    let mut transfers = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        transfers.push(d.matrix()?);
    }
    let mut proxies = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        proxies.push(match d.u8()? {
            0 => {
                let cnt = d.count(8)?;
                let mut idx = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    idx.push(d.usize()?);
                }
                ProxyPoints::Indices(idx)
            }
            1 => ProxyPoints::Coords(d.pointset()?),
            k => return Err(d.corrupt(format!("unknown proxy kind {k}"))),
        });
    }
    d.finish()?;
    Ok(Generators {
        ranks,
        bases,
        transfers,
        proxies,
    })
}

fn decode_blocks<S: Scalar>(
    payload: &[u8],
    section: &'static str,
) -> Result<Vec<MatrixS<S>>, LoadError> {
    let mut d = Dec::new(payload, section);
    let cnt = d.count(16)?;
    let mut blocks = Vec::with_capacity(cnt);
    for _ in 0..cnt {
        blocks.push(d.matrix()?);
    }
    d.finish()?;
    Ok(blocks)
}

struct Fingerprint {
    mode: MemoryMode,
    scalar_code: u8,
    provenance: BuilderProvenance,
    eta: f64,
    dim: usize,
    kernel_name: String,
    probes: Vec<u64>,
    epoch: u64,
}

fn decode_fingerprint(payload: &[u8]) -> Result<Fingerprint, LoadError> {
    let mut d = Dec::new(payload, "fingerprint");
    let mode = match d.u8()? {
        0 => MemoryMode::Normal,
        1 => MemoryMode::OnTheFly,
        m => return Err(d.corrupt(format!("unknown memory mode {m}"))),
    };
    let scalar_code = d.u8()?;
    if scalar_name(scalar_code).is_none() {
        return Err(d.corrupt(format!("unknown scalar code {scalar_code}")));
    }
    // Provenance is metadata: every byte value is accepted (unknown codes
    // surface as `BuilderProvenance::Unknown`), never a decode error.
    let provenance = BuilderProvenance::from_code(d.u8()?);
    let eta = d.f64()?;
    let dim = d.u32()? as usize;
    let kernel_name = d.str()?;
    let probe_count = d.u8()? as usize;
    let mut probes = Vec::with_capacity(probe_count);
    for _ in 0..probe_count {
        probes.push(d.f64()?.to_bits());
    }
    // Optional trailing update epoch: absent in files written before
    // dynamic operators existed, which read as epoch 0.
    let epoch = if d.remaining() > 0 { d.u64()? } else { 0 };
    d.finish()?;
    Ok(Fingerprint {
        mode,
        scalar_code,
        provenance,
        eta,
        dim,
        kernel_name,
        probes,
        epoch,
    })
}

/// The parsed section header of an operator file: its format version, the
/// checksum-verified sections, and — for v4 — where the header ends (the
/// slab region starts at the next [`SLAB_ALIGN`] boundary after it).
struct Header<'a> {
    version: u32,
    sections: Vec<(u8, &'a [u8])>,
    header_end: usize,
}

/// Splits `magic | version | sections` and verifies every section
/// checksum. Trailing bytes after the end marker are the v4 slab region;
/// v3 files must end exactly at the marker.
fn split_sections(bytes: &[u8]) -> Result<Header<'_>, LoadError> {
    if bytes.len() < MAGIC.len() + 4 || bytes[..MAGIC.len()] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
        return Err(LoadError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut d = Dec::new(&bytes[12..], "header");
    let mut sections = Vec::new();
    loop {
        let tag = d.u8()?;
        d.section = section_name(tag);
        if d.section == "unknown" {
            return Err(d.corrupt(format!("unknown section tag {tag}")));
        }
        let len = d.count(1)?;
        let payload = d.take(len)?;
        let stored = d.u64()?;
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(d.corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        let done = tag == TAG_END;
        sections.push((tag, payload));
        if done {
            d.section = "header";
            if version == LEGACY_FORMAT_VERSION {
                d.finish()?;
            }
            let header_end = bytes.len() - d.remaining();
            return Ok(Header {
                version,
                sections,
                header_end,
            });
        }
    }
}

fn section<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<Option<&'a [u8]>, LoadError> {
    let mut found = None;
    for &(t, payload) in sections {
        if t == tag {
            if found.is_some() {
                return Err(LoadError::CorruptSection {
                    section: section_name(tag),
                    reason: "duplicated section".into(),
                });
            }
            found = Some(payload);
        }
    }
    Ok(found)
}

fn require<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<&'a [u8], LoadError> {
    section(sections, tag)?.ok_or_else(|| LoadError::CorruptSection {
        section: section_name(tag),
        reason: "section missing".into(),
    })
}

/// Reads the storage scalar name ("f32" or "f64") recorded in an encoded
/// operator without decoding the payload — what a loader dispatching on
/// precision (e.g. the `h2serve` binary) inspects before choosing which
/// `decode::<S>` to call. Verifies magic, version, and the fingerprint
/// checksum on the way.
pub fn stored_scalar(bytes: &[u8]) -> Result<&'static str, LoadError> {
    let hdr = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&hdr.sections, TAG_FINGERPRINT)?)?;
    Ok(scalar_name(fp.scalar_code).expect("decode_fingerprint validated the code"))
}

/// Reads the codec format version of an encoded operator (3 or 4),
/// verifying the magic first. How loaders decide whether a file supports
/// zero-copy `mmap` serving (v4) or needs the owned decode (v3).
pub fn stored_version(bytes: &[u8]) -> Result<u32, LoadError> {
    Ok(split_sections(bytes)?.version)
}

/// Reads the builder provenance recorded in an encoded operator without
/// decoding the payload — how serving surfaces report what pipeline
/// constructed each stored operator. Unknown provenance codes are returned
/// as [`BuilderProvenance::Unknown`], never an error.
pub fn stored_builder(bytes: &[u8]) -> Result<BuilderProvenance, LoadError> {
    let hdr = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&hdr.sections, TAG_FINGERPRINT)?)?;
    Ok(fp.provenance)
}

/// Reads the update epoch recorded in an encoded operator without decoding
/// the payload. Files written before dynamic operators existed carry no
/// epoch field and report 0 — never an error.
pub fn stored_epoch(bytes: &[u8]) -> Result<u64, LoadError> {
    let hdr = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&hdr.sections, TAG_FINGERPRINT)?)?;
    Ok(fp.epoch)
}

/// Shared fingerprint validation: stored scalar width against the
/// requested `S`, and the kernel (by name, then by probe evaluations).
fn check_fingerprint<S: Scalar>(fp: &Fingerprint, kernel: &dyn Kernel) -> Result<(), LoadError> {
    if fp.scalar_code != S::CODE {
        return Err(LoadError::PrecisionMismatch {
            stored: scalar_name(fp.scalar_code).expect("decode_fingerprint validated the code"),
            requested: S::NAME,
        });
    }
    if fp.kernel_name != kernel.name() {
        return Err(LoadError::KernelMismatch {
            stored: fp.kernel_name.clone(),
            given: kernel.name().to_string(),
            reason: "kernel names differ",
        });
    }
    let expect: Vec<u64> = probe_values(kernel, fp.dim)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    if fp.probes != expect {
        return Err(LoadError::KernelMismatch {
            stored: fp.kernel_name.clone(),
            given: kernel.name().to_string(),
            reason: "probe evaluations differ (same name, different parameters?)",
        });
    }
    Ok(())
}

/// Final assembly shared by every decode path: pack the decoded pieces into
/// [`H2Parts`] and revalidate through `from_parts`.
#[allow(clippy::too_many_arguments)]
fn assemble<S: Scalar>(
    fp: Fingerprint,
    tree: ClusterTree,
    ranks: Vec<usize>,
    proxies: Vec<ProxyPoints>,
    bases: Vec<MatrixS<S>>,
    transfers: Vec<MatrixS<S>>,
    coupling_blocks: Option<Vec<MatrixS<S>>>,
    nearfield_blocks: Option<Vec<MatrixS<S>>>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    if tree.points().dim() != fp.dim {
        return Err(LoadError::Inconsistent(format!(
            "fingerprint dimension {} != point dimension {}",
            fp.dim,
            tree.points().dim()
        )));
    }
    let parts = H2Parts {
        tree,
        eta: fp.eta,
        mode: fp.mode,
        bases,
        transfers,
        proxies,
        ranks,
        coupling_blocks,
        nearfield_blocks,
        provenance: fp.provenance,
        epoch: fp.epoch,
    };
    H2MatrixS::from_parts(parts, kernel).map_err(LoadError::Inconsistent)
}

fn decode_v3<S: Scalar>(
    hdr: &Header<'_>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let sections = &hdr.sections;
    let fp = decode_fingerprint(require(sections, TAG_FINGERPRINT)?)?;
    check_fingerprint::<S>(&fp, kernel.as_ref())?;
    let tree = decode_tree(require(sections, TAG_TREE)?)?;
    let gens = decode_generators::<S>(require(sections, TAG_GENERATORS)?)?;

    let coupling = section(sections, TAG_COUPLING)?;
    let nearfield = section(sections, TAG_NEARFIELD)?;
    let (coupling_blocks, nearfield_blocks) = match fp.mode {
        MemoryMode::Normal => (
            Some(decode_blocks(require(sections, TAG_COUPLING)?, "coupling")?),
            Some(decode_blocks(
                require(sections, TAG_NEARFIELD)?,
                "nearfield",
            )?),
        ),
        MemoryMode::OnTheFly => {
            if coupling.is_some() || nearfield.is_some() {
                return Err(LoadError::Inconsistent(
                    "on-the-fly file carries dense block sections".into(),
                ));
            }
            (None, None)
        }
    };
    assemble(
        fp,
        tree,
        gens.ranks,
        gens.proxies,
        gens.bases,
        gens.transfers,
        coupling_blocks,
        nearfield_blocks,
        kernel,
    )
}

// ------------------------------------------------------------- v4 decoding

/// Ranks and proxies from the v4 generators-meta section.
fn decode_generators_meta(payload: &[u8]) -> Result<(Vec<usize>, Vec<ProxyPoints>), LoadError> {
    let mut d = Dec::new(payload, "generators-meta");
    let n_nodes = d.count(8)?;
    let mut ranks = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        ranks.push(d.usize()?);
    }
    let mut proxies = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        proxies.push(match d.u8()? {
            0 => {
                let cnt = d.count(8)?;
                let mut idx = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    idx.push(d.usize()?);
                }
                ProxyPoints::Indices(idx)
            }
            1 => ProxyPoints::Coords(d.pointset()?),
            k => return Err(d.corrupt(format!("unknown proxy kind {k}"))),
        });
    }
    d.finish()?;
    Ok((ranks, proxies))
}

fn decode_directory(payload: &[u8]) -> Result<Vec<DirFamily>, LoadError> {
    let mut d = Dec::new(payload, "directory");
    let n_families = d.u8()? as usize;
    let mut families: Vec<DirFamily> = Vec::with_capacity(n_families);
    for _ in 0..n_families {
        let kind = d.u8()?;
        if family_name(kind) == "unknown" {
            return Err(d.corrupt(format!("unknown matrix family {kind}")));
        }
        if families.last().is_some_and(|p| p.kind >= kind) {
            return Err(d.corrupt("matrix families out of order"));
        }
        let slab_off = d.usize()?;
        let slab_len = d.usize()?;
        let checksum = d.u64()?;
        let count = d.count(24)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(SlabBlock {
                nrows: d.usize()?,
                ncols: d.usize()?,
                offset: d.usize()?,
            });
        }
        families.push(DirFamily {
            kind,
            slab_off,
            slab_len,
            checksum,
            entries,
        });
    }
    d.finish()?;
    Ok(families)
}

fn corrupt_directory(reason: impl Into<String>) -> LoadError {
    LoadError::CorruptSection {
        section: "directory",
        reason: reason.into(),
    }
}

/// The fully parsed, not yet materialized body of a v4 file.
struct V4Body {
    fp: Fingerprint,
    tree: ClusterTree,
    ranks: Vec<usize>,
    proxies: Vec<ProxyPoints>,
    families: Vec<DirFamily>,
    /// Absolute byte offset of the (aligned) slab region within the file.
    slab_base: usize,
}

/// Parses and cross-validates a v4 header: fingerprint (against `kernel`
/// and `S`), tree, generators-meta, and a directory whose families match
/// the stored memory mode and fit inside the file. Materializing the
/// matrices — owned copies or mmap views — is the caller's half.
fn parse_v4<S: Scalar>(
    bytes: &[u8],
    hdr: &Header<'_>,
    kernel: &dyn Kernel,
) -> Result<V4Body, LoadError> {
    let sections = &hdr.sections;
    let fp = decode_fingerprint(require(sections, TAG_FINGERPRINT)?)?;
    check_fingerprint::<S>(&fp, kernel)?;
    let tree = decode_tree(require(sections, TAG_TREE)?)?;
    let (ranks, proxies) = decode_generators_meta(require(sections, TAG_GENERATORS_META)?)?;
    let families = decode_directory(require(sections, TAG_DIRECTORY)?)?;

    let kinds: Vec<u8> = families.iter().map(|f| f.kind).collect();
    let expect: &[u8] = match fp.mode {
        MemoryMode::Normal => &[
            FAMILY_BASES,
            FAMILY_TRANSFERS,
            FAMILY_COUPLING,
            FAMILY_NEARFIELD,
        ],
        MemoryMode::OnTheFly => &[FAMILY_BASES, FAMILY_TRANSFERS],
    };
    if kinds != expect {
        return Err(corrupt_directory(format!(
            "families {kinds:?} do not match memory mode {:?}",
            fp.mode
        )));
    }

    let slab_base = align_up(hdr.header_end, SLAB_ALIGN);
    let slab_region_len = bytes
        .len()
        .checked_sub(slab_base)
        .ok_or_else(|| corrupt_directory("file truncated before the slab region"))?;
    for f in &families {
        let end = f
            .slab_off
            .checked_add(f.slab_len)
            .ok_or_else(|| corrupt_directory("family slab offset overflows"))?;
        if end > slab_region_len {
            return Err(corrupt_directory(format!(
                "{} slab [{}, {end}) escapes the {slab_region_len}-byte slab region",
                family_name(f.kind),
                f.slab_off,
            )));
        }
    }
    Ok(V4Body {
        fp,
        tree,
        ranks,
        proxies,
        families,
        slab_base,
    })
}

/// Materializes one family as owned matrices, verifying the family slab
/// checksum (the owned path reads every byte anyway, so verification is
/// free — unlike the mmap path, where it would fault in every page).
fn owned_family<S: Scalar>(
    slab_region: &[u8],
    f: &DirFamily,
) -> Result<Vec<MatrixS<S>>, LoadError> {
    let name = family_name(f.kind);
    let slab = &slab_region[f.slab_off..f.slab_off + f.slab_len];
    let actual = fnv1a64(slab);
    if actual != f.checksum {
        return Err(corrupt_directory(format!(
            "{name} slab checksum mismatch (stored {:#018x}, computed {actual:#018x})",
            f.checksum
        )));
    }
    let mut mats = Vec::with_capacity(f.entries.len());
    for b in &f.entries {
        let cnt = b
            .nrows
            .checked_mul(b.ncols)
            .ok_or_else(|| corrupt_directory(format!("{name} matrix shape overflows")))?;
        let bytes_needed = cnt
            .checked_mul(S::BYTES)
            .ok_or_else(|| corrupt_directory(format!("{name} matrix size overflows")))?;
        let end = b
            .offset
            .checked_add(bytes_needed)
            .filter(|&e| e <= f.slab_len)
            .ok_or_else(|| {
                corrupt_directory(format!(
                    "{name} matrix {}x{} escapes its {}-byte slab",
                    b.nrows, b.ncols, f.slab_len
                ))
            })?;
        let data: Vec<S> = slab[b.offset..end]
            .chunks_exact(S::BYTES)
            .map(S::read_le)
            .collect();
        mats.push(MatrixS::from_col_major(b.nrows, b.ncols, data));
    }
    Ok(mats)
}

/// Materializes one family as zero-copy views over the mapping. Bounds and
/// alignment are fully checked by [`BlockSlabs::new`]; the slab checksum is
/// deliberately *not* verified (it would fault in every page).
fn mapped_family<S: Scalar>(
    mem: &Arc<SlabMem>,
    slab_base: usize,
    f: &DirFamily,
) -> Result<Vec<MatrixS<S>>, LoadError> {
    let base = slab_base
        .checked_add(f.slab_off)
        .ok_or_else(|| corrupt_directory("family slab offset overflows"))?;
    let slabs: BlockSlabs<S> = BlockSlabs::new(mem.clone(), base, f.entries.clone())
        .map_err(|e| corrupt_directory(format!("{}: {e}", family_name(f.kind))))?;
    Ok(slabs.views())
}

fn decode_v4<S: Scalar>(
    bytes: &[u8],
    hdr: &Header<'_>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let body = parse_v4::<S>(bytes, hdr, kernel.as_ref())?;
    let slab_region = &bytes[body.slab_base..];
    let mut fams = body.families.iter();
    let bases = owned_family::<S>(slab_region, fams.next().expect("validated"))?;
    let transfers = owned_family::<S>(slab_region, fams.next().expect("validated"))?;
    let coupling_blocks = fams
        .next()
        .map(|f| owned_family::<S>(slab_region, f))
        .transpose()?;
    let nearfield_blocks = fams
        .next()
        .map(|f| owned_family::<S>(slab_region, f))
        .transpose()?;
    assemble(
        body.fp,
        body.tree,
        body.ranks,
        body.proxies,
        bases,
        transfers,
        coupling_blocks,
        nearfield_blocks,
        kernel,
    )
}

/// Decodes an operator from bytes, verifying structure, checksums, the
/// kernel fingerprint against `kernel`, and the stored scalar type against
/// the requested `S` (a width mismatch is the typed
/// [`LoadError::PrecisionMismatch`], never a silent conversion). Reads both
/// the current v4 format and legacy v3 files; always produces an operator
/// with owned (heap) storage.
pub fn decode<S: Scalar>(bytes: &[u8], kernel: Arc<dyn Kernel>) -> Result<H2MatrixS<S>, LoadError> {
    let hdr = split_sections(bytes)?;
    if hdr.version == LEGACY_FORMAT_VERSION {
        decode_v3(&hdr, kernel)
    } else {
        decode_v4(bytes, &hdr, kernel)
    }
}

/// Decodes an operator whose bytes live in a [`SlabMem`] — when the memory
/// is an actual file mapping and the file is v4, matrix payloads become
/// zero-copy views over the mapped pages instead of heap copies, so the
/// operator's resident footprint is just its tree, lists, and directory.
///
/// Falls back to the owned [`decode`] for legacy v3 bytes (whose payloads
/// are unaligned and section-framed) and on big-endian hosts (which cannot
/// reinterpret little-endian slabs in place). Either way the returned
/// operator is *bitwise identical* in behaviour: the mmap path hands the
/// same bytes to the same apply kernels through [`BlockSlabs`] views.
pub fn decode_mapped<S: Scalar>(
    mem: &Arc<SlabMem>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let bytes = mem.as_bytes();
    let hdr = split_sections(bytes)?;
    if hdr.version == LEGACY_FORMAT_VERSION || cfg!(target_endian = "big") {
        return decode(bytes, kernel);
    }
    let body = parse_v4::<S>(bytes, &hdr, kernel.as_ref())?;
    let mut fams = body.families.iter();
    let bases = mapped_family::<S>(mem, body.slab_base, fams.next().expect("validated"))?;
    let transfers = mapped_family::<S>(mem, body.slab_base, fams.next().expect("validated"))?;
    let coupling_blocks = fams
        .next()
        .map(|f| mapped_family::<S>(mem, body.slab_base, f))
        .transpose()?;
    let nearfield_blocks = fams
        .next()
        .map(|f| mapped_family::<S>(mem, body.slab_base, f))
        .transpose()?;
    assemble(
        body.fp,
        body.tree,
        body.ranks,
        body.proxies,
        bases,
        transfers,
        coupling_blocks,
        nearfield_blocks,
        kernel,
    )
}

/// Loads an operator from `path`, verifying it against `kernel`.
pub fn load<S: Scalar>(
    path: impl AsRef<Path>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes, kernel)
}

/// Loads an operator from `path` by `mmap`ing it: v4 matrix payloads are
/// served straight from the page cache (see [`decode_mapped`]), so a cold
/// load touches only the header pages and resident memory stays near zero
/// until blocks are actually applied.
pub fn load_mmap<S: Scalar>(
    path: impl AsRef<Path>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let mem = SlabMem::map_file(path.as_ref())?;
    decode_mapped(&mem, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2Matrix};
    use h2_kernels::{Coulomb, Matern32};
    use h2_points::gen;

    fn build(mode: MemoryMode) -> H2Matrix {
        let pts = gen::uniform_cube(600, 3, 17);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
    }

    fn build32(mode: MemoryMode) -> H2MatrixS<f32> {
        let pts = gen::uniform_cube(600, 3, 17);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg)
    }

    #[test]
    fn round_trip_bitwise_both_modes() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(mode);
            let bytes = encode(&h2);
            let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            assert_eq!(back.mode(), mode);
            let b: Vec<f64> = (0..h2.n()).map(|i| (0.29 * i as f64).cos()).collect();
            assert_eq!(h2.matvec(&b), back.matvec(&b), "mode {mode:?}");
        }
    }

    #[test]
    fn f32_round_trip_bitwise_and_smaller() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build32(mode);
            let bytes = encode(&h2);
            assert_eq!(stored_scalar(&bytes).unwrap(), "f32");
            // Scalar payloads halve; tree coordinates, indices, and framing
            // are precision-independent. Stored files are block-dominated
            // (well under 0.75×); on-the-fly files are tree/proxy-heavy, so
            // only strictly smaller is guaranteed there.
            let bytes64 = encode(&build(mode));
            let ceiling = match mode {
                MemoryMode::Normal => 0.75 * bytes64.len() as f64,
                MemoryMode::OnTheFly => bytes64.len() as f64,
            };
            assert!(
                (bytes.len() as f64) < ceiling,
                "{mode:?}: f32 file {} B vs f64 {} B",
                bytes.len(),
                bytes64.len()
            );
            let back: H2MatrixS<f32> = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            let b: Vec<f32> = (0..h2.n()).map(|i| (0.29 * i as f32).cos()).collect();
            assert_eq!(h2.matvec(&b), back.matvec(&b), "mode {mode:?}");
        }
    }

    #[test]
    fn precision_mismatch_is_typed_and_never_converts() {
        let bytes32 = encode(&build32(MemoryMode::OnTheFly));
        let err = decode::<f64>(&bytes32, Arc::new(Coulomb))
            .err()
            .expect("must fail");
        assert!(
            matches!(
                err,
                LoadError::PrecisionMismatch {
                    stored: "f32",
                    requested: "f64",
                }
            ),
            "{err}"
        );
        let bytes64 = encode(&build(MemoryMode::OnTheFly));
        assert_eq!(stored_scalar(&bytes64).unwrap(), "f64");
        let err = decode::<f32>(&bytes64, Arc::new(Coulomb))
            .err()
            .expect("must fail");
        assert!(
            matches!(
                err,
                LoadError::PrecisionMismatch {
                    stored: "f64",
                    requested: "f32",
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn interpolation_grids_round_trip() {
        let pts = gen::uniform_cube(400, 2, 3);
        let cfg = H2Config {
            basis: BasisMethod::Interpolation { order: 4 },
            mode: MemoryMode::OnTheFly,
            leaf_size: 40,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
        let back: H2Matrix = decode(&encode(&h2), Arc::new(Coulomb)).expect("decode");
        let b: Vec<f64> = (0..h2.n()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let h2 = build(MemoryMode::OnTheFly);
        let bytes = encode(&h2);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode::<f64>(&bad, Arc::new(Coulomb)),
            Err(LoadError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            decode::<f64>(&bad, Arc::new(Coulomb)),
            Err(LoadError::UnsupportedVersion { found: 99, .. })
        ));
        assert!(matches!(
            decode::<f64>(&bytes[..4], Arc::new(Coulomb)),
            Err(LoadError::BadMagic)
        ));
    }

    #[test]
    fn older_version_blobs_are_refused() {
        // v1 had no scalar byte, v2 no provenance byte: readers must stop
        // at the version check rather than misparse either payload.
        let h2 = build(MemoryMode::OnTheFly);
        for old in [1u32, 2u32] {
            let mut bytes = encode(&h2);
            bytes[8..12].copy_from_slice(&old.to_le_bytes());
            let err = decode::<f64>(&bytes, Arc::new(Coulomb))
                .err()
                .expect("must fail");
            assert!(
                matches!(
                    err,
                    LoadError::UnsupportedVersion {
                        found,
                        supported: FORMAT_VERSION,
                    } if found == old
                ),
                "v{old}: {err}"
            );
            assert!(matches!(
                stored_scalar(&bytes),
                Err(LoadError::UnsupportedVersion { .. })
            ));
            assert!(matches!(
                stored_builder(&bytes),
                Err(LoadError::UnsupportedVersion { .. })
            ));
        }
    }

    #[test]
    fn provenance_is_recorded_and_peekable() {
        use h2_core::BuilderStrategy;
        let pts = gen::uniform_cube(500, 3, 17);
        let anchor = H2Matrix::build(
            &pts,
            Arc::new(Coulomb),
            &H2Config {
                basis: BasisMethod::data_driven_for_tol(1e-4, 3),
                mode: MemoryMode::OnTheFly,
                leaf_size: 48,
                ..H2Config::default()
            },
        );
        let sketched = H2Matrix::build(
            &pts,
            Arc::new(Coulomb),
            &H2Config {
                builder: BuilderStrategy::sketched_for_tol(1e-4, 3),
                mode: MemoryMode::OnTheFly,
                leaf_size: 48,
                seed: 5,
                ..H2Config::default()
            },
        );
        for (h2, want) in [
            (&anchor, BuilderProvenance::AnchorNet),
            (&sketched, BuilderProvenance::Sketched),
        ] {
            let bytes = encode(h2);
            assert_eq!(stored_builder(&bytes).unwrap(), want);
            let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            assert_eq!(back.provenance(), want);
            // Round trip again: provenance survives re-encoding from parts.
            assert_eq!(stored_builder(&encode(&back)).unwrap(), want);
        }
    }

    #[test]
    fn unknown_provenance_byte_is_surfaced_not_rejected() {
        // Simulate a file from a future build with a new builder: flip the
        // provenance byte (fingerprint payload offset 2: mode, scalar,
        // provenance) and fix up the section checksum. The file must load,
        // reporting the unknown code.
        let h2 = build(MemoryMode::OnTheFly);
        let mut bytes = encode(&h2);
        // First section starts after magic (8) + version (4): tag (1) +
        // len (8) + payload.
        assert_eq!(bytes[12], TAG_FINGERPRINT);
        let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let payload_start = 21;
        bytes[payload_start + 2] = 200; // provenance byte
        let sum = fnv1a64(&bytes[payload_start..payload_start + len]);
        bytes[payload_start + len..payload_start + len + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            stored_builder(&bytes).unwrap(),
            BuilderProvenance::Unknown(200)
        );
        let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("unknown code must load");
        assert_eq!(back.provenance(), BuilderProvenance::Unknown(200));
        assert_eq!(back.provenance().name(), "unknown");
    }

    #[test]
    fn update_epoch_round_trips_in_the_fingerprint() {
        let mut h2 = build(MemoryMode::Normal);
        assert_eq!(stored_epoch(&encode(&h2)).unwrap(), 0);
        // Apply an update so the operator is genuinely at a later epoch.
        let extra = PointSet::new(3, vec![0.41, 0.43, 0.47, 0.51, 0.53, 0.57]);
        h2.insert_points(&extra).expect("insert");
        assert_eq!(h2.epoch(), 1);
        let bytes = encode(&h2);
        assert_eq!(stored_epoch(&bytes).unwrap(), 1);
        let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
        assert_eq!(back.epoch(), 1);
        let b: Vec<f64> = (0..h2.n()).map(|i| (0.23 * i as f64).sin()).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn pre_epoch_v3_files_read_as_epoch_zero() {
        // Simulate a v3 file written before the epoch field existed: strip
        // the trailing 8 epoch bytes from the fingerprint payload, shrink
        // the section length, and re-checksum. It must load with epoch 0.
        let h2 = build(MemoryMode::OnTheFly);
        let bytes = encode_v3(&h2);
        assert_eq!(bytes[12], TAG_FINGERPRINT);
        let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let payload_start = 21;
        let mut old = Vec::new();
        old.extend_from_slice(&bytes[..13]);
        old.extend_from_slice(&((len - 8) as u64).to_le_bytes());
        let payload = &bytes[payload_start..payload_start + len - 8];
        old.extend_from_slice(payload);
        old.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        old.extend_from_slice(&bytes[payload_start + len + 8..]);
        assert_eq!(stored_epoch(&old).unwrap(), 0);
        assert_eq!(stored_scalar(&old).unwrap(), "f64");
        let back: H2Matrix = decode(&old, Arc::new(Coulomb)).expect("pre-epoch file must load");
        assert_eq!(back.epoch(), 0);
        let b: Vec<f64> = (0..h2.n()).map(|i| (0.29 * i as f64).cos()).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn kernel_mismatch_by_name_and_by_parameters() {
        let pts = gen::uniform_cube(300, 3, 5);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 3),
            mode: MemoryMode::OnTheFly,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Matern32 { ell: 1.0 }), &cfg);
        let bytes = encode(&h2);
        // Different kernel type: name mismatch.
        assert!(matches!(
            decode::<f64>(&bytes, Arc::new(Coulomb)),
            Err(LoadError::KernelMismatch {
                reason: "kernel names differ",
                ..
            })
        ));
        // Same type, different parameter: probe mismatch.
        let err = decode::<f64>(&bytes, Arc::new(Matern32 { ell: 2.0 }))
            .err()
            .expect("parameter change must be detected");
        assert!(matches!(err, LoadError::KernelMismatch { .. }), "{err}");
        // The right kernel round-trips.
        assert!(decode::<f64>(&bytes, Arc::new(Matern32 { ell: 1.0 })).is_ok());
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("h2serve-codec-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn v3_and_v4_files_decode_to_the_same_operator() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(mode);
            let v4 = encode(&h2);
            let v3 = encode_v3(&h2);
            assert_eq!(stored_version(&v4).unwrap(), FORMAT_VERSION);
            assert_eq!(stored_version(&v3).unwrap(), LEGACY_FORMAT_VERSION);
            assert_eq!(stored_scalar(&v3).unwrap(), stored_scalar(&v4).unwrap());
            assert_eq!(stored_epoch(&v3).unwrap(), stored_epoch(&v4).unwrap());
            let from4: H2Matrix = decode(&v4, Arc::new(Coulomb)).expect("v4 decode");
            let from3: H2Matrix = decode(&v3, Arc::new(Coulomb)).expect("v3 decode");
            let b: Vec<f64> = (0..h2.n()).map(|i| (0.31 * i as f64).sin()).collect();
            let want = h2.matvec(&b);
            assert_eq!(from4.matvec(&b), want, "mode {mode:?}");
            assert_eq!(from3.matvec(&b), want, "mode {mode:?}");
            // And a v4 re-encode of the v3 decode is byte-identical to the
            // original v4 encode: the slab layout is deterministic.
            assert_eq!(encode(&from3), v4, "mode {mode:?}");
        }
    }

    #[test]
    fn v4_slabs_are_aligned() {
        let h2 = build(MemoryMode::Normal);
        let bytes = encode(&h2);
        let hdr = split_sections(&bytes).unwrap();
        assert_eq!(hdr.version, FORMAT_VERSION);
        let families = decode_directory(require(&hdr.sections, TAG_DIRECTORY).unwrap()).unwrap();
        assert_eq!(families.len(), 4);
        let slab_base = align_up(hdr.header_end, SLAB_ALIGN);
        assert_eq!(slab_base % SLAB_ALIGN, 0);
        for f in &families {
            assert_eq!(f.slab_off % SLAB_ALIGN, 0, "{}", family_name(f.kind));
            for b in &f.entries {
                assert_eq!(b.offset % SLAB_ALIGN, 0);
                assert!(b.offset + b.nrows * b.ncols * 8 <= f.slab_len);
            }
            assert!(slab_base + f.slab_off + f.slab_len <= bytes.len());
        }
    }

    #[test]
    fn mmap_load_is_bitwise_identical_and_near_zero_resident() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(mode);
            let path = temp_path(&format!("mmap-{mode:?}"));
            save(&h2, &path).expect("save");
            let owned: H2Matrix = load(&path, Arc::new(Coulomb)).expect("owned load");
            let mapped: H2Matrix = load_mmap(&path, Arc::new(Coulomb)).expect("mmap load");
            let b: Vec<f64> = (0..h2.n()).map(|i| (0.29 * i as f64).cos()).collect();
            let want: Vec<u64> = owned.matvec(&b).iter().map(|v| v.to_bits()).collect();
            let got: Vec<u64> = mapped.matvec(&b).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "mode {mode:?}");

            let ro = owned.memory_report();
            let rm = mapped.memory_report();
            assert_eq!(ro.mapped_bytes, 0);
            assert!(rm.mapped_bytes > 0, "mode {mode:?}");
            // Everything that was generator payload is now mapped pages.
            assert_eq!(
                rm.total() + rm.mapped_bytes,
                ro.total(),
                "mode {mode:?}: owned {ro:?} vs mapped {rm:?}"
            );
            if mode == MemoryMode::Normal {
                // The headline criterion: an mmap-loaded operator's resident
                // generator bytes are <= 5% of the owned footprint's.
                assert!(
                    (rm.generators() as f64) <= 0.05 * ro.generators() as f64,
                    "resident generators {} vs owned {}",
                    rm.generators(),
                    ro.generators()
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn mmap_load_matches_for_f32_operators() {
        let h2 = build32(MemoryMode::Normal);
        let path = temp_path("mmap-f32");
        save(&h2, &path).expect("save");
        let owned: H2MatrixS<f32> = load(&path, Arc::new(Coulomb)).expect("owned load");
        let mapped: H2MatrixS<f32> = load_mmap(&path, Arc::new(Coulomb)).expect("mmap load");
        let b: Vec<f32> = (0..h2.n()).map(|i| (0.29 * i as f32).cos()).collect();
        let want: Vec<u32> = owned.matvec(&b).iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = mapped.matvec(&b).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        assert!(mapped.memory_report().mapped_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_v4_slabs_fail_closed() {
        let h2 = build(MemoryMode::Normal);
        let bytes = encode(&h2);

        // Bit-flip deep in the slab region: the owned decode's family
        // checksum catches it.
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 16] ^= 0x40;
        let err = decode::<f64>(&flipped, Arc::new(Coulomb))
            .err()
            .expect("bit flip must be detected");
        assert!(
            matches!(&err, LoadError::CorruptSection { section: "directory", reason }
                if reason.contains("checksum")),
            "{err}"
        );

        // Truncation inside the slab region: typed error, never a panic —
        // on the owned path and on the mmap path alike.
        let cut = &bytes[..bytes.len() - bytes.len() / 3];
        assert!(decode::<f64>(cut, Arc::new(Coulomb)).is_err());
        let mem = h2_linalg::SlabMem::from_bytes(cut);
        assert!(decode_mapped::<f64>(&mem, Arc::new(Coulomb)).is_err());

        // The same truncated bytes through a real file mapping.
        let path = temp_path("truncated");
        std::fs::write(&path, cut).unwrap();
        assert!(load_mmap::<f64>(&path, Arc::new(Coulomb)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probe_values_are_deterministic() {
        let a = probe_values(&Coulomb, 3);
        let b = probe_values(&Coulomb, 3);
        assert_eq!(a, b);
        assert_ne!(
            probe_values(&Matern32 { ell: 1.0 }, 2),
            probe_values(&Matern32 { ell: 2.0 }, 2)
        );
    }
}
