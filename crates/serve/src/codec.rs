//! Versioned binary persistence codec for built [`H2MatrixS`] operators.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "H2SERVE\0" (8 bytes) | format version (u32)
//! then a sequence of sections, each:
//!   tag (u8) | payload length (u64) | payload | FNV-1a 64 checksum of payload
//! ```
//!
//! Sections, in order: **fingerprint** (memory mode, scalar-type code,
//! eta, dimension, kernel name + probe values), **tree** (points,
//! permutation, node arena), **generators** (ranks, bases, transfers,
//! proxies), then — normal mode only — **coupling** and **nearfield** dense
//! block sequences, and an empty **end** marker. On-the-fly files simply
//! omit the two dense-block sections, which is what makes them ~10×
//! smaller: they carry only the tree and the skeleton/grid generators,
//! mirroring the paper's memory-mode split.
//!
//! Format version 2 made the codec precision-generic: the fingerprint
//! carries the storage scalar's code (`Scalar::CODE`, 4 for `f32` / 8 for
//! `f64`) and every generator/block entry is written at the operator's own
//! width, so `f32` files are roughly half the size. The scalar byte sits
//! inside the checksummed fingerprint section, and [`decode`] rejects a
//! width the caller did not ask for with the typed
//! [`LoadError::PrecisionMismatch`] — the codec never converts silently.
//!
//! Format version 3 (this build) adds a **provenance byte** right after the
//! scalar byte: which construction pipeline produced the operator
//! ([`h2_core::BuilderProvenance`] — anchor-net, sketched, interpolation,
//! proxy-surface). Provenance is pure metadata: unknown codes are surfaced
//! as `unknown(code)` and never rejected, so files written by newer builds
//! with new builders still load. Peek at it without a full decode via
//! [`stored_builder`]. Version-1/2 blobs are refused with
//! [`LoadError::UnsupportedVersion`].
//!
//! Dynamic-operator builds additionally append the operator's **update
//! epoch** (a `u64`, see `h2_core::update`) after the probe values, still
//! inside the checksummed fingerprint section. The field is optional on
//! read: v3 files written before epochs existed simply end after the
//! probes and load with epoch 0, so the extension is fully backward and
//! forward compatible within version 3.
//!
//! Block lists are *not* stored: they are a deterministic function of the
//! tree and `eta`, recomputed at load (`H2Matrix::from_parts`), which also
//! guarantees the dense-block sequences align with the recomputed pair
//! lists.
//!
//! Every decoding path is bounds-checked and returns [`LoadError`] — a
//! truncated, bit-flipped, or adversarially wrong file must never panic.

use crate::error::LoadError;
use h2_core::proxy::ProxyPoints;
use h2_core::{BuilderProvenance, H2MatrixS, H2Parts, MemoryMode};
use h2_dist::wire::{WireReader, WireWriter};
use h2_kernels::Kernel;
use h2_linalg::{MatrixS, Scalar};
use h2_points::tree::Node;
use h2_points::{BoundingBox, ClusterTree, PointSet};
use std::path::Path;
use std::sync::Arc;

/// File magic: identifies h2-serve operator files.
pub const MAGIC: [u8; 8] = *b"H2SERVE\0";
/// Codec format version this build writes and reads. Version 2 added the
/// scalar-type byte to the fingerprint and precision-generic payloads;
/// version 3 added the builder-provenance byte next to the scalar byte.
pub const FORMAT_VERSION: u32 = 3;

const TAG_FINGERPRINT: u8 = 1;
const TAG_TREE: u8 = 2;
const TAG_GENERATORS: u8 = 3;
const TAG_COUPLING: u8 = 4;
const TAG_NEARFIELD: u8 = 5;
const TAG_END: u8 = 6;

/// Number of deterministic kernel probe evaluations in the fingerprint.
const PROBE_COUNT: usize = 4;

fn section_name(tag: u8) -> &'static str {
    match tag {
        TAG_FINGERPRINT => "fingerprint",
        TAG_TREE => "tree",
        TAG_GENERATORS => "generators",
        TAG_COUPLING => "coupling",
        TAG_NEARFIELD => "nearfield",
        TAG_END => "end",
        _ => "unknown",
    }
}

/// Maps a stored `Scalar::CODE` byte back to the scalar's name.
fn scalar_name(code: u8) -> Option<&'static str> {
    match code {
        x if x == f32::CODE => Some(f32::NAME),
        x if x == f64::CODE => Some(f64::NAME),
        _ => None,
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic kernel fingerprint: evaluations at fixed synthetic point
/// pairs inside the unit cube. Stored bit-exact, so a kernel of the same
/// name but different parameters (e.g. a different bandwidth) is rejected
/// at load time.
fn probe_values(kernel: &dyn Kernel, dim: usize) -> [f64; PROBE_COUNT] {
    let mut out = [0.0; PROBE_COUNT];
    for (k, v) in out.iter_mut().enumerate() {
        let x: Vec<f64> = (0..dim)
            .map(|j| 0.12 + 0.05 * k as f64 + 0.031 * j as f64)
            .collect();
        let y: Vec<f64> = (0..dim)
            .map(|j| 0.83 - 0.04 * k as f64 - 0.017 * j as f64)
            .collect();
        *v = kernel.eval(&x, &y);
    }
    out
}

// ---------------------------------------------------------------- encoding

/// Section payload writer: the shared little-endian primitives
/// ([`h2_dist::wire::WireWriter`], the same codec the socket frames use)
/// plus this codec's composite shapes (matrices, point sets).
struct Enc {
    w: WireWriter,
}

impl Enc {
    fn new() -> Self {
        Enc {
            w: WireWriter::new(),
        }
    }
    fn u8(&mut self, v: u8) {
        self.w.u8(v);
    }
    fn u32(&mut self, v: u32) {
        self.w.u32(v);
    }
    fn u64(&mut self, v: u64) {
        self.w.u64(v);
    }
    fn usize(&mut self, v: usize) {
        self.w.usize(v);
    }
    fn f64(&mut self, v: f64) {
        self.w.f64(v);
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.w.f64s(vs);
    }
    fn scalars<S: Scalar>(&mut self, vs: &[S]) {
        self.w.scalars(vs);
    }
    fn str(&mut self, s: &str) {
        self.w.str(s);
    }
    fn matrix<S: Scalar>(&mut self, m: &MatrixS<S>) {
        self.usize(m.nrows());
        self.usize(m.ncols());
        self.scalars(m.as_slice());
    }
    fn pointset(&mut self, p: &PointSet) {
        self.u32(p.dim() as u32);
        self.usize(p.len());
        self.f64s(p.coords());
    }
    fn into_bytes(self) -> Vec<u8> {
        self.w.into_bytes()
    }
}

fn encode_fingerprint<S: Scalar>(h2: &H2MatrixS<S>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(match h2.mode() {
        MemoryMode::Normal => 0,
        MemoryMode::OnTheFly => 1,
    });
    e.u8(S::CODE);
    e.u8(h2.provenance().code());
    e.f64(h2.lists().eta);
    e.u32(h2.dim() as u32);
    e.str(h2.kernel().name());
    e.u8(PROBE_COUNT as u8);
    e.f64s(&probe_values(h2.kernel(), h2.dim()));
    // Update epoch: appended last so pre-epoch v3 readers (which stop at
    // the probes) and pre-epoch v3 files (which omit it) both keep working.
    e.u64(h2.epoch());
    e.into_bytes()
}

fn encode_tree(tree: &ClusterTree) -> Vec<u8> {
    let mut e = Enc::new();
    e.pointset(tree.points());
    for &p in tree.perm() {
        e.usize(p);
    }
    e.usize(tree.node_count());
    for nd in tree.nodes() {
        e.usize(nd.start);
        e.usize(nd.end);
        e.u32(nd.level as u32);
        e.u64(nd.parent.map_or(u64::MAX, |p| p as u64));
        e.u8(nd.children.len() as u8);
        for &c in &nd.children {
            e.usize(c);
        }
        e.f64s(nd.bbox.lo());
        e.f64s(nd.bbox.hi());
    }
    e.into_bytes()
}

fn encode_generators<S: Scalar>(parts: &H2Parts<S>) -> Vec<u8> {
    let mut e = Enc::new();
    let n_nodes = parts.ranks.len();
    e.usize(n_nodes);
    for &r in &parts.ranks {
        e.usize(r);
    }
    for m in &parts.bases {
        e.matrix(m);
    }
    for m in &parts.transfers {
        e.matrix(m);
    }
    for p in &parts.proxies {
        match p {
            ProxyPoints::Indices(idx) => {
                e.u8(0);
                e.usize(idx.len());
                for &i in idx {
                    e.usize(i);
                }
            }
            ProxyPoints::Coords(pts) => {
                e.u8(1);
                e.pointset(pts);
            }
        }
    }
    e.into_bytes()
}

fn encode_blocks<S: Scalar>(blocks: &[MatrixS<S>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(blocks.len());
    for m in blocks {
        e.matrix(m);
    }
    e.into_bytes()
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Serializes a built operator into the versioned binary format, at the
/// operator's own storage precision.
pub fn encode<S: Scalar>(h2: &H2MatrixS<S>) -> Vec<u8> {
    let parts = h2.to_parts();
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    push_section(&mut out, TAG_FINGERPRINT, &encode_fingerprint(h2));
    push_section(&mut out, TAG_TREE, &encode_tree(&parts.tree));
    push_section(&mut out, TAG_GENERATORS, &encode_generators(&parts));
    if let Some(cb) = &parts.coupling_blocks {
        push_section(&mut out, TAG_COUPLING, &encode_blocks(cb));
    }
    if let Some(nb) = &parts.nearfield_blocks {
        push_section(&mut out, TAG_NEARFIELD, &encode_blocks(nb));
    }
    push_section(&mut out, TAG_END, &[]);
    out
}

/// Saves an operator to `path`; returns the number of bytes written.
pub fn save<S: Scalar>(h2: &H2MatrixS<S>, path: impl AsRef<Path>) -> std::io::Result<u64> {
    let bytes = encode(h2);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked reader over one section's payload: the shared
/// [`h2_dist::wire::WireReader`] primitives, with every wire-level
/// failure mapped to [`LoadError::CorruptSection`] naming the section,
/// plus this codec's composite shapes.
struct Dec<'a> {
    r: WireReader<'a>,
    section: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Dec {
            r: WireReader::new(buf),
            section,
        }
    }

    fn corrupt(&self, reason: impl Into<String>) -> LoadError {
        LoadError::CorruptSection {
            section: self.section,
            reason: reason.into(),
        }
    }

    fn wrap<T>(&self, r: Result<T, h2_dist::wire::WireError>) -> Result<T, LoadError> {
        r.map_err(|e| self.corrupt(e.to_string()))
    }

    fn remaining(&self) -> usize {
        self.r.remaining()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let r = self.r.take(n);
        self.wrap(r)
    }

    fn u8(&mut self) -> Result<u8, LoadError> {
        let r = self.r.u8();
        self.wrap(r)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        let r = self.r.u32();
        self.wrap(r)
    }

    fn u64(&mut self) -> Result<u64, LoadError> {
        let r = self.r.u64();
        self.wrap(r)
    }

    fn usize(&mut self) -> Result<usize, LoadError> {
        let r = self.r.usize();
        self.wrap(r)
    }

    /// A `usize` that will be used as an element count of `elem_bytes`-sized
    /// items: rejected unless the remaining payload can actually hold it,
    /// which both catches truncation early and prevents huge bogus
    /// allocations from corrupt length fields.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, LoadError> {
        let r = self.r.count(elem_bytes);
        self.wrap(r)
    }

    fn f64(&mut self) -> Result<f64, LoadError> {
        let r = self.r.f64();
        self.wrap(r)
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, LoadError> {
        let r = self.r.f64s(n);
        self.wrap(r)
    }

    fn scalars<S: Scalar>(&mut self, n: usize) -> Result<Vec<S>, LoadError> {
        let r = self.r.scalars(n);
        self.wrap(r)
    }

    fn str(&mut self) -> Result<String, LoadError> {
        let r = self.r.str();
        self.wrap(r)
    }

    fn matrix<S: Scalar>(&mut self) -> Result<MatrixS<S>, LoadError> {
        let nrows = self.usize()?;
        let ncols = self.usize()?;
        let cnt = nrows
            .checked_mul(ncols)
            .ok_or_else(|| self.corrupt("matrix shape overflows"))?;
        if cnt
            .checked_mul(S::BYTES)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(self.corrupt(format!("matrix {nrows}x{ncols} larger than payload")));
        }
        Ok(MatrixS::from_col_major(nrows, ncols, self.scalars(cnt)?))
    }

    fn pointset(&mut self) -> Result<PointSet, LoadError> {
        let dim = self.u32()? as usize;
        if dim == 0 || dim > 64 {
            return Err(self.corrupt(format!("implausible dimension {dim}")));
        }
        let n = self.count(dim * 8)?;
        let coords = self.f64s(n * dim)?;
        Ok(PointSet::new(dim, coords))
    }

    fn finish(&self) -> Result<(), LoadError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

fn decode_tree(payload: &[u8]) -> Result<ClusterTree, LoadError> {
    let mut d = Dec::new(payload, "tree");
    let points = d.pointset()?;
    let n = points.len();
    let dim = points.dim();
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        perm.push(d.usize()?);
    }
    let n_nodes = d.count(8 + 8 + 4 + 8 + 1 + 2 * dim * 8)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let start = d.usize()?;
        let end = d.usize()?;
        let level = d.u32()? as usize;
        let parent = match d.u64()? {
            u64::MAX => None,
            p => Some(usize::try_from(p).map_err(|_| d.corrupt("parent id exceeds usize"))?),
        };
        let n_children = d.u8()? as usize;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(d.usize()?);
        }
        let lo = d.f64s(dim)?;
        let hi = d.f64s(dim)?;
        // NaN corners fail this comparison too, so BoundingBox::new's
        // (debug) precondition can never trip on decoded data.
        if !lo.iter().zip(&hi).all(|(l, h)| l <= h) {
            return Err(d.corrupt("inverted or NaN bounding box"));
        }
        nodes.push(Node {
            start,
            end,
            children,
            parent,
            level,
            bbox: BoundingBox::new(lo, hi),
        });
    }
    d.finish()?;
    ClusterTree::from_parts(points, perm, nodes).map_err(LoadError::Inconsistent)
}

struct Generators<S: Scalar> {
    ranks: Vec<usize>,
    bases: Vec<MatrixS<S>>,
    transfers: Vec<MatrixS<S>>,
    proxies: Vec<ProxyPoints>,
}

fn decode_generators<S: Scalar>(payload: &[u8]) -> Result<Generators<S>, LoadError> {
    let mut d = Dec::new(payload, "generators");
    let n_nodes = d.count(8)?;
    let mut ranks = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        ranks.push(d.usize()?);
    }
    let mut bases = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        bases.push(d.matrix()?);
    }
    let mut transfers = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        transfers.push(d.matrix()?);
    }
    let mut proxies = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        proxies.push(match d.u8()? {
            0 => {
                let cnt = d.count(8)?;
                let mut idx = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    idx.push(d.usize()?);
                }
                ProxyPoints::Indices(idx)
            }
            1 => ProxyPoints::Coords(d.pointset()?),
            k => return Err(d.corrupt(format!("unknown proxy kind {k}"))),
        });
    }
    d.finish()?;
    Ok(Generators {
        ranks,
        bases,
        transfers,
        proxies,
    })
}

fn decode_blocks<S: Scalar>(
    payload: &[u8],
    section: &'static str,
) -> Result<Vec<MatrixS<S>>, LoadError> {
    let mut d = Dec::new(payload, section);
    let cnt = d.count(16)?;
    let mut blocks = Vec::with_capacity(cnt);
    for _ in 0..cnt {
        blocks.push(d.matrix()?);
    }
    d.finish()?;
    Ok(blocks)
}

struct Fingerprint {
    mode: MemoryMode,
    scalar_code: u8,
    provenance: BuilderProvenance,
    eta: f64,
    dim: usize,
    kernel_name: String,
    probes: Vec<u64>,
    epoch: u64,
}

fn decode_fingerprint(payload: &[u8]) -> Result<Fingerprint, LoadError> {
    let mut d = Dec::new(payload, "fingerprint");
    let mode = match d.u8()? {
        0 => MemoryMode::Normal,
        1 => MemoryMode::OnTheFly,
        m => return Err(d.corrupt(format!("unknown memory mode {m}"))),
    };
    let scalar_code = d.u8()?;
    if scalar_name(scalar_code).is_none() {
        return Err(d.corrupt(format!("unknown scalar code {scalar_code}")));
    }
    // Provenance is metadata: every byte value is accepted (unknown codes
    // surface as `BuilderProvenance::Unknown`), never a decode error.
    let provenance = BuilderProvenance::from_code(d.u8()?);
    let eta = d.f64()?;
    let dim = d.u32()? as usize;
    let kernel_name = d.str()?;
    let probe_count = d.u8()? as usize;
    let mut probes = Vec::with_capacity(probe_count);
    for _ in 0..probe_count {
        probes.push(d.f64()?.to_bits());
    }
    // Optional trailing update epoch: absent in files written before
    // dynamic operators existed, which read as epoch 0.
    let epoch = if d.remaining() > 0 { d.u64()? } else { 0 };
    d.finish()?;
    Ok(Fingerprint {
        mode,
        scalar_code,
        provenance,
        eta,
        dim,
        kernel_name,
        probes,
        epoch,
    })
}

/// Splits `magic | version | sections` and verifies every checksum.
fn split_sections(bytes: &[u8]) -> Result<Vec<(u8, &[u8])>, LoadError> {
    if bytes.len() < MAGIC.len() + 4 || bytes[..MAGIC.len()] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(LoadError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut d = Dec::new(&bytes[12..], "header");
    let mut sections = Vec::new();
    loop {
        let tag = d.u8()?;
        d.section = section_name(tag);
        if d.section == "unknown" {
            return Err(d.corrupt(format!("unknown section tag {tag}")));
        }
        let len = d.count(1)?;
        let payload = d.take(len)?;
        let stored = d.u64()?;
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(d.corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        let done = tag == TAG_END;
        sections.push((tag, payload));
        if done {
            d.section = "header";
            d.finish()?;
            return Ok(sections);
        }
    }
}

fn section<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<Option<&'a [u8]>, LoadError> {
    let mut found = None;
    for &(t, payload) in sections {
        if t == tag {
            if found.is_some() {
                return Err(LoadError::CorruptSection {
                    section: section_name(tag),
                    reason: "duplicated section".into(),
                });
            }
            found = Some(payload);
        }
    }
    Ok(found)
}

fn require<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<&'a [u8], LoadError> {
    section(sections, tag)?.ok_or_else(|| LoadError::CorruptSection {
        section: section_name(tag),
        reason: "section missing".into(),
    })
}

/// Reads the storage scalar name ("f32" or "f64") recorded in an encoded
/// operator without decoding the payload — what a loader dispatching on
/// precision (e.g. the `h2serve` binary) inspects before choosing which
/// `decode::<S>` to call. Verifies magic, version, and the fingerprint
/// checksum on the way.
pub fn stored_scalar(bytes: &[u8]) -> Result<&'static str, LoadError> {
    let sections = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&sections, TAG_FINGERPRINT)?)?;
    Ok(scalar_name(fp.scalar_code).expect("decode_fingerprint validated the code"))
}

/// Reads the builder provenance recorded in an encoded operator without
/// decoding the payload — how serving surfaces report what pipeline
/// constructed each stored operator. Unknown provenance codes are returned
/// as [`BuilderProvenance::Unknown`], never an error.
pub fn stored_builder(bytes: &[u8]) -> Result<BuilderProvenance, LoadError> {
    let sections = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&sections, TAG_FINGERPRINT)?)?;
    Ok(fp.provenance)
}

/// Reads the update epoch recorded in an encoded operator without decoding
/// the payload. Files written before dynamic operators existed carry no
/// epoch field and report 0 — never an error.
pub fn stored_epoch(bytes: &[u8]) -> Result<u64, LoadError> {
    let sections = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&sections, TAG_FINGERPRINT)?)?;
    Ok(fp.epoch)
}

/// Decodes an operator from bytes, verifying structure, checksums, the
/// kernel fingerprint against `kernel`, and the stored scalar type against
/// the requested `S` (a width mismatch is the typed
/// [`LoadError::PrecisionMismatch`], never a silent conversion).
pub fn decode<S: Scalar>(bytes: &[u8], kernel: Arc<dyn Kernel>) -> Result<H2MatrixS<S>, LoadError> {
    let sections = split_sections(bytes)?;
    let fp = decode_fingerprint(require(&sections, TAG_FINGERPRINT)?)?;
    if fp.scalar_code != S::CODE {
        return Err(LoadError::PrecisionMismatch {
            stored: scalar_name(fp.scalar_code).expect("decode_fingerprint validated the code"),
            requested: S::NAME,
        });
    }
    if fp.kernel_name != kernel.name() {
        return Err(LoadError::KernelMismatch {
            stored: fp.kernel_name,
            given: kernel.name().to_string(),
            reason: "kernel names differ",
        });
    }
    let expect: Vec<u64> = probe_values(kernel.as_ref(), fp.dim)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    if fp.probes != expect {
        return Err(LoadError::KernelMismatch {
            stored: fp.kernel_name,
            given: kernel.name().to_string(),
            reason: "probe evaluations differ (same name, different parameters?)",
        });
    }

    let tree = decode_tree(require(&sections, TAG_TREE)?)?;
    if tree.points().dim() != fp.dim {
        return Err(LoadError::Inconsistent(format!(
            "fingerprint dimension {} != point dimension {}",
            fp.dim,
            tree.points().dim()
        )));
    }
    let gens = decode_generators::<S>(require(&sections, TAG_GENERATORS)?)?;

    let coupling = section(&sections, TAG_COUPLING)?;
    let nearfield = section(&sections, TAG_NEARFIELD)?;
    let (coupling_blocks, nearfield_blocks) = match fp.mode {
        MemoryMode::Normal => (
            Some(decode_blocks(
                require(&sections, TAG_COUPLING)?,
                "coupling",
            )?),
            Some(decode_blocks(
                require(&sections, TAG_NEARFIELD)?,
                "nearfield",
            )?),
        ),
        MemoryMode::OnTheFly => {
            if coupling.is_some() || nearfield.is_some() {
                return Err(LoadError::Inconsistent(
                    "on-the-fly file carries dense block sections".into(),
                ));
            }
            (None, None)
        }
    };

    let parts = H2Parts {
        tree,
        eta: fp.eta,
        mode: fp.mode,
        bases: gens.bases,
        transfers: gens.transfers,
        proxies: gens.proxies,
        ranks: gens.ranks,
        coupling_blocks,
        nearfield_blocks,
        provenance: fp.provenance,
        epoch: fp.epoch,
    };
    H2MatrixS::from_parts(parts, kernel).map_err(LoadError::Inconsistent)
}

/// Loads an operator from `path`, verifying it against `kernel`.
pub fn load<S: Scalar>(
    path: impl AsRef<Path>,
    kernel: Arc<dyn Kernel>,
) -> Result<H2MatrixS<S>, LoadError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{BasisMethod, H2Config, H2Matrix};
    use h2_kernels::{Coulomb, Matern32};
    use h2_points::gen;

    fn build(mode: MemoryMode) -> H2Matrix {
        let pts = gen::uniform_cube(600, 3, 17);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
    }

    fn build32(mode: MemoryMode) -> H2MatrixS<f32> {
        let pts = gen::uniform_cube(600, 3, 17);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, 3),
            mode,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        H2MatrixS::<f32>::build(&pts, Arc::new(Coulomb), &cfg)
    }

    #[test]
    fn round_trip_bitwise_both_modes() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build(mode);
            let bytes = encode(&h2);
            let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            assert_eq!(back.mode(), mode);
            let b: Vec<f64> = (0..h2.n()).map(|i| (0.29 * i as f64).cos()).collect();
            assert_eq!(h2.matvec(&b), back.matvec(&b), "mode {mode:?}");
        }
    }

    #[test]
    fn f32_round_trip_bitwise_and_smaller() {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let h2 = build32(mode);
            let bytes = encode(&h2);
            assert_eq!(stored_scalar(&bytes).unwrap(), "f32");
            // Scalar payloads halve; tree coordinates, indices, and framing
            // are precision-independent. Stored files are block-dominated
            // (well under 0.75×); on-the-fly files are tree/proxy-heavy, so
            // only strictly smaller is guaranteed there.
            let bytes64 = encode(&build(mode));
            let ceiling = match mode {
                MemoryMode::Normal => 0.75 * bytes64.len() as f64,
                MemoryMode::OnTheFly => bytes64.len() as f64,
            };
            assert!(
                (bytes.len() as f64) < ceiling,
                "{mode:?}: f32 file {} B vs f64 {} B",
                bytes.len(),
                bytes64.len()
            );
            let back: H2MatrixS<f32> = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            let b: Vec<f32> = (0..h2.n()).map(|i| (0.29 * i as f32).cos()).collect();
            assert_eq!(h2.matvec(&b), back.matvec(&b), "mode {mode:?}");
        }
    }

    #[test]
    fn precision_mismatch_is_typed_and_never_converts() {
        let bytes32 = encode(&build32(MemoryMode::OnTheFly));
        let err = decode::<f64>(&bytes32, Arc::new(Coulomb))
            .err()
            .expect("must fail");
        assert!(
            matches!(
                err,
                LoadError::PrecisionMismatch {
                    stored: "f32",
                    requested: "f64",
                }
            ),
            "{err}"
        );
        let bytes64 = encode(&build(MemoryMode::OnTheFly));
        assert_eq!(stored_scalar(&bytes64).unwrap(), "f64");
        let err = decode::<f32>(&bytes64, Arc::new(Coulomb))
            .err()
            .expect("must fail");
        assert!(
            matches!(
                err,
                LoadError::PrecisionMismatch {
                    stored: "f64",
                    requested: "f32",
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn interpolation_grids_round_trip() {
        let pts = gen::uniform_cube(400, 2, 3);
        let cfg = H2Config {
            basis: BasisMethod::Interpolation { order: 4 },
            mode: MemoryMode::OnTheFly,
            leaf_size: 40,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
        let back: H2Matrix = decode(&encode(&h2), Arc::new(Coulomb)).expect("decode");
        let b: Vec<f64> = (0..h2.n()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let h2 = build(MemoryMode::OnTheFly);
        let bytes = encode(&h2);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode::<f64>(&bad, Arc::new(Coulomb)),
            Err(LoadError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            decode::<f64>(&bad, Arc::new(Coulomb)),
            Err(LoadError::UnsupportedVersion { found: 99, .. })
        ));
        assert!(matches!(
            decode::<f64>(&bytes[..4], Arc::new(Coulomb)),
            Err(LoadError::BadMagic)
        ));
    }

    #[test]
    fn older_version_blobs_are_refused() {
        // v1 had no scalar byte, v2 no provenance byte: readers must stop
        // at the version check rather than misparse either payload.
        let h2 = build(MemoryMode::OnTheFly);
        for old in [1u32, 2u32] {
            let mut bytes = encode(&h2);
            bytes[8..12].copy_from_slice(&old.to_le_bytes());
            let err = decode::<f64>(&bytes, Arc::new(Coulomb))
                .err()
                .expect("must fail");
            assert!(
                matches!(
                    err,
                    LoadError::UnsupportedVersion {
                        found,
                        supported: FORMAT_VERSION,
                    } if found == old
                ),
                "v{old}: {err}"
            );
            assert!(matches!(
                stored_scalar(&bytes),
                Err(LoadError::UnsupportedVersion { .. })
            ));
            assert!(matches!(
                stored_builder(&bytes),
                Err(LoadError::UnsupportedVersion { .. })
            ));
        }
    }

    #[test]
    fn provenance_is_recorded_and_peekable() {
        use h2_core::BuilderStrategy;
        let pts = gen::uniform_cube(500, 3, 17);
        let anchor = H2Matrix::build(
            &pts,
            Arc::new(Coulomb),
            &H2Config {
                basis: BasisMethod::data_driven_for_tol(1e-4, 3),
                mode: MemoryMode::OnTheFly,
                leaf_size: 48,
                ..H2Config::default()
            },
        );
        let sketched = H2Matrix::build(
            &pts,
            Arc::new(Coulomb),
            &H2Config {
                builder: BuilderStrategy::sketched_for_tol(1e-4, 3),
                mode: MemoryMode::OnTheFly,
                leaf_size: 48,
                seed: 5,
                ..H2Config::default()
            },
        );
        for (h2, want) in [
            (&anchor, BuilderProvenance::AnchorNet),
            (&sketched, BuilderProvenance::Sketched),
        ] {
            let bytes = encode(h2);
            assert_eq!(stored_builder(&bytes).unwrap(), want);
            let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
            assert_eq!(back.provenance(), want);
            // Round trip again: provenance survives re-encoding from parts.
            assert_eq!(stored_builder(&encode(&back)).unwrap(), want);
        }
    }

    #[test]
    fn unknown_provenance_byte_is_surfaced_not_rejected() {
        // Simulate a file from a future build with a new builder: flip the
        // provenance byte (fingerprint payload offset 2: mode, scalar,
        // provenance) and fix up the section checksum. The file must load,
        // reporting the unknown code.
        let h2 = build(MemoryMode::OnTheFly);
        let mut bytes = encode(&h2);
        // First section starts after magic (8) + version (4): tag (1) +
        // len (8) + payload.
        assert_eq!(bytes[12], TAG_FINGERPRINT);
        let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let payload_start = 21;
        bytes[payload_start + 2] = 200; // provenance byte
        let sum = fnv1a64(&bytes[payload_start..payload_start + len]);
        bytes[payload_start + len..payload_start + len + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            stored_builder(&bytes).unwrap(),
            BuilderProvenance::Unknown(200)
        );
        let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("unknown code must load");
        assert_eq!(back.provenance(), BuilderProvenance::Unknown(200));
        assert_eq!(back.provenance().name(), "unknown");
    }

    #[test]
    fn update_epoch_round_trips_in_the_fingerprint() {
        let mut h2 = build(MemoryMode::Normal);
        assert_eq!(stored_epoch(&encode(&h2)).unwrap(), 0);
        // Apply an update so the operator is genuinely at a later epoch.
        let extra = PointSet::new(3, vec![0.41, 0.43, 0.47, 0.51, 0.53, 0.57]);
        h2.insert_points(&extra).expect("insert");
        assert_eq!(h2.epoch(), 1);
        let bytes = encode(&h2);
        assert_eq!(stored_epoch(&bytes).unwrap(), 1);
        let back: H2Matrix = decode(&bytes, Arc::new(Coulomb)).expect("decode");
        assert_eq!(back.epoch(), 1);
        let b: Vec<f64> = (0..h2.n()).map(|i| (0.23 * i as f64).sin()).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn pre_epoch_v3_files_read_as_epoch_zero() {
        // Simulate a v3 file written before the epoch field existed: strip
        // the trailing 8 epoch bytes from the fingerprint payload, shrink
        // the section length, and re-checksum. It must load with epoch 0.
        let h2 = build(MemoryMode::OnTheFly);
        let bytes = encode(&h2);
        assert_eq!(bytes[12], TAG_FINGERPRINT);
        let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let payload_start = 21;
        let mut old = Vec::new();
        old.extend_from_slice(&bytes[..13]);
        old.extend_from_slice(&((len - 8) as u64).to_le_bytes());
        let payload = &bytes[payload_start..payload_start + len - 8];
        old.extend_from_slice(payload);
        old.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        old.extend_from_slice(&bytes[payload_start + len + 8..]);
        assert_eq!(stored_epoch(&old).unwrap(), 0);
        assert_eq!(stored_scalar(&old).unwrap(), "f64");
        let back: H2Matrix = decode(&old, Arc::new(Coulomb)).expect("pre-epoch file must load");
        assert_eq!(back.epoch(), 0);
        let b: Vec<f64> = (0..h2.n()).map(|i| (0.29 * i as f64).cos()).collect();
        assert_eq!(h2.matvec(&b), back.matvec(&b));
    }

    #[test]
    fn kernel_mismatch_by_name_and_by_parameters() {
        let pts = gen::uniform_cube(300, 3, 5);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-4, 3),
            mode: MemoryMode::OnTheFly,
            leaf_size: 48,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Matern32 { ell: 1.0 }), &cfg);
        let bytes = encode(&h2);
        // Different kernel type: name mismatch.
        assert!(matches!(
            decode::<f64>(&bytes, Arc::new(Coulomb)),
            Err(LoadError::KernelMismatch {
                reason: "kernel names differ",
                ..
            })
        ));
        // Same type, different parameter: probe mismatch.
        let err = decode::<f64>(&bytes, Arc::new(Matern32 { ell: 2.0 }))
            .err()
            .expect("parameter change must be detected");
        assert!(matches!(err, LoadError::KernelMismatch { .. }), "{err}");
        // The right kernel round-trips.
        assert!(decode::<f64>(&bytes, Arc::new(Matern32 { ell: 1.0 })).is_ok());
    }

    #[test]
    fn probe_values_are_deterministic() {
        let a = probe_values(&Coulomb, 3);
        let b = probe_values(&Coulomb, 3);
        assert_eq!(a, b);
        assert_ne!(
            probe_values(&Matern32 { ell: 1.0 }, 2),
            probe_values(&Matern32 { ell: 2.0 }, 2)
        );
    }
}
