//! Minimal live scrape endpoint: `GET /metrics` + `GET /healthz` over
//! hand-rolled HTTP/1.0 — no async runtime, no dependencies, one thread.
//!
//! The server exists so an operator can point Prometheus (or `curl`) at a
//! running `h2serve serve` deployment while traffic flows. It is
//! deliberately not a web framework: requests are read with a deadline,
//! only the request line is parsed, every response closes the connection,
//! and the accept loop polls a non-blocking listener so
//! [`MetricsServer::stop`] (or drop) terminates promptly. The metrics body
//! is produced by a caller-supplied closure at scrape time, so one server
//! can compose any mix of sources (service, registry, cache, net/telemetry
//! counters) without this module knowing about them.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one scrape may take to send its request and drain the response.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll interval; bounds the shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Longest request head we bother reading (the request line is all we use).
const MAX_REQUEST_BYTES: usize = 4096;

/// A background thread serving `GET /metrics` and `GET /healthz`.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves until
    /// [`Self::stop`] or drop. `render` is called once per `/metrics`
    /// scrape, on the server thread, to produce the exposition body.
    pub fn start(
        addr: &str,
        render: impl Fn() -> String + Send + 'static,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("h2-metrics-http".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &render),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address, e.g. to print a scrape URL.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one connection: read the request head, answer, close.
fn serve_one(mut stream: TcpStream, render: &impl Fn() -> String) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let path = match read_request_path(&mut stream) {
        Request::Get(path) => path,
        Request::OtherMethod => {
            // Prometheus only ever GETs; anything else is a wrong verb on
            // a real resource, not a malformed request.
            let _ = write_response(&mut stream, "405 Method Not Allowed", "GET only\n");
            return;
        }
        Request::Bad => {
            let _ = write_response(&mut stream, "400 Bad Request", "bad request\n");
            return;
        }
    };
    h2_telemetry::counter_add!("serve.http_requests", 1);
    match path.as_str() {
        "/metrics" => {
            let _ = write_response(&mut stream, "200 OK", &render());
        }
        "/healthz" => {
            let _ = write_response(&mut stream, "200 OK", "ok\n");
        }
        _ => {
            let _ = write_response(&mut stream, "404 Not Found", "not found\n");
        }
    }
}

/// Outcome of parsing a request head.
enum Request {
    /// A well-formed `GET` and its target path.
    Get(String),
    /// Well-formed request line with any other method → 405.
    OtherMethod,
    /// Malformed, oversized, or unreadable → 400.
    Bad,
}

/// Reads up to the end of the request head and classifies the request line
/// (the only part this server uses).
fn read_request_path(stream: &mut TcpStream) -> Request {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return Request::Bad,
        }
    }
    let Ok(head) = std::str::from_utf8(&buf) else {
        return Request::Bad;
    };
    let Some(line) = head.lines().next() else {
        return Request::Bad;
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Request::Bad;
    };
    // Methods are tokens of ASCII letters; anything else is line noise.
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Request::Bad;
    }
    if method != "GET" {
        return Request::OtherMethod;
    }
    Request::Get(path.to_string())
}

fn write_response(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let mut srv =
            MetricsServer::start("127.0.0.1:0", || "h2_test_metric 42\n".to_string()).unwrap();
        let addr = srv.addr();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain"), "{head}");
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert_eq!(body, "h2_test_metric 42\n");
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404 Not Found"), "{head}");
        srv.stop();
        srv.stop(); // idempotent
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may still accept briefly; a request must go
                // unanswered either way once the thread is gone.
                let mut s = TcpStream::connect(addr).unwrap();
                let _ = write!(s, "GET /healthz HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                s.read_to_string(&mut out).is_err() || out.is_empty()
            },
            "server still answering after stop"
        );
    }

    #[test]
    fn render_sees_live_state_per_scrape() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let srv = MetricsServer::start("127.0.0.1:0", move || {
            format!("scrapes {}\n", h.fetch_add(1, Ordering::Relaxed) + 1)
        })
        .unwrap();
        assert_eq!(get(srv.addr(), "/metrics").1, "scrapes 1\n");
        assert_eq!(get(srv.addr(), "/metrics").1, "scrapes 2\n");
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        // A non-GET request gets 405 without calling render; garbage that
        // is not HTTP at all still gets 400.
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        write!(s, "\x01\x02 not http\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 400"), "{resp}");
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
