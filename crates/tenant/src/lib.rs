//! # h2-tenant
//!
//! The QoS plane for multi-tenant operator serving: who may submit work,
//! how much of it may wait, and in what order a shared batched service
//! drains it.
//!
//! The serving stack (h2-serve) batches single-vector requests into fused
//! multi-RHS sweeps. With one FIFO queue, a tenant that floods the queue
//! sets everyone else's tail latency. This crate makes fairness an explicit
//! policy instead of an accident of arrival order:
//!
//! - [`TenantId`] / [`TenantPolicy`] / [`TenantTable`] — named tenants with
//!   a scheduling weight, a queue-depth cap, a relative cache-budget share,
//!   and an admission state, parsed from a small `tenants.toml` dialect
//!   ([`TenantTable::parse`]) or built programmatically;
//! - [`BatchScheduler`] — per-tenant queues drained by **weighted deficit
//!   round robin** ([`QueueMode::Wdrr`]): backlogged tenants are served in
//!   proportion to their weights, idle capacity is redistributed, and a
//!   persistent cursor plus deficit accounting keep partial batches fair
//!   (see the invariants in [`sched`]). [`QueueMode::Fifo`] preserves the
//!   legacy global-arrival-order drain as a measurable baseline;
//! - admission control — a full or closed tenant's submission is refused
//!   with a typed [`AdmitError`] before it can displace anyone else's work;
//! - cache partitioning — [`TenantTable::cache_shares`] feeds
//!   [`h2_cache::split_budget`] so one byte budget divides exactly across
//!   tenants in policy proportion.
//!
//! The crate is deliberately free of serving types: it schedules any queued
//! item `T`, and h2-serve instantiates it with its pending-request struct.
//!
//! ```
//! use h2_tenant::{BatchScheduler, QueueMode, TenantPolicy, TenantTable};
//!
//! let table = TenantTable::parse(
//!     "[hog]\nweight = 1.0\nmax_queue = 4\n\n[light]\nweight = 4.0\n",
//! )
//! .unwrap();
//! let mut sched: BatchScheduler<&str> = BatchScheduler::new(table, QueueMode::Wdrr);
//! let hog = sched.table().index_of("hog").unwrap();
//! let light = sched.table().index_of("light").unwrap();
//! for _ in 0..4 {
//!     sched.push(hog, "hog rhs").unwrap();
//!     sched.push(light, "light rhs").unwrap();
//! }
//! assert!(sched.push(hog, "rejected").is_err()); // queue cap
//! // Under contention a batch splits 4:1 in the light tenant's favor,
//! // even though the hog submitted first.
//! let batch = sched.next_batch(5);
//! assert_eq!(batch.iter().filter(|&&(t, _)| t == light).count(), 4);
//! assert_eq!(batch.iter().filter(|&&(t, _)| t == hog).count(), 1);
//! ```

pub mod policy;
pub mod sched;

pub use policy::{Admission, PolicyError, TenantId, TenantPolicy, TenantTable};
pub use sched::{AdmitError, BatchScheduler, QueueMode};
