//! The batch scheduler: per-tenant queues drained either in global arrival
//! order ([`QueueMode::Fifo`], the legacy single-queue behavior) or by
//! weighted deficit round robin ([`QueueMode::Wdrr`]).
//!
//! ## WDRR invariants
//!
//! - Each tenant owns a FIFO queue and a *deficit* (credit measured in
//!   requests; serving one request costs 1).
//! - The scheduler visits queues round-robin from a **persistent cursor** —
//!   the cursor survives across [`BatchScheduler::next_batch`] calls, so
//!   short batches cannot systematically favor low indices.
//! - On visiting a backlogged tenant whose deficit is below the cost of one
//!   request, the tenant earns `quantum × weight` credit. The quantum is
//!   normalized to `1 / min_weight` at construction, so a single top-up
//!   always covers at least one request — every visit of a backlogged queue
//!   makes progress, whatever the weight spread.
//! - The tenant is then served while its deficit covers the cost and the
//!   batch has room. Credit left over when the batch fills is kept (the
//!   next visit tops up only if below cost, so partial batches never
//!   double-credit).
//! - A tenant observed with an **empty queue forfeits its deficit**: idle
//!   tenants cannot hoard credit and burst past the weights later.
//!
//! Under sustained backlog, tenant `i`'s service share converges to
//! `weight_i / Σ weights` — the weighted-fairness property the `tenant_qos`
//! bench gates. An idle tenant's capacity is redistributed to the backlogged
//! ones in proportion to *their* weights (work-conserving).

use crate::policy::{Admission, TenantTable};
use std::collections::VecDeque;

/// Cost of serving one request, in deficit units.
const COST: f64 = 1.0;

/// How the scheduler orders requests across tenants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueMode {
    /// Global arrival order, ignoring weights — the legacy single-FIFO
    /// behavior (admission control still applies). A heavy tenant can
    /// monopolize the service; kept as the baseline the QoS bench measures
    /// WDRR against.
    Fifo,
    /// Weighted deficit round robin (the default): backlogged tenants are
    /// served in proportion to their policy weights.
    #[default]
    Wdrr,
}

/// Why a submission was refused at the scheduler door. The queue state is
/// untouched by a rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant index is outside the table (or the name did not resolve —
    /// callers translating names map a failed lookup here).
    UnknownTenant,
    /// The tenant's admission state is [`Admission::Closed`].
    Closed,
    /// The tenant's queue already holds `max_queue` requests.
    QueueFull {
        /// Requests currently queued for the tenant.
        depth: usize,
        /// The policy cap that was hit.
        max: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownTenant => write!(f, "unknown tenant"),
            AdmitError::Closed => write!(f, "tenant admission is closed"),
            AdmitError::QueueFull { depth, max } => {
                write!(f, "tenant queue full ({depth} of {max})")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Per-tenant queues plus the drain policy. Generic over the queued item so
/// the serving layer can store its pending-request struct directly.
#[derive(Debug)]
pub struct BatchScheduler<T> {
    table: TenantTable,
    mode: QueueMode,
    quantum: f64,
    queues: Vec<VecDeque<T>>,
    deficits: Vec<f64>,
    cursor: usize,
    /// Tenant index per queued item in arrival order; maintained only in
    /// FIFO mode, where it *is* the drain order.
    arrivals: VecDeque<usize>,
    total: usize,
}

impl<T> BatchScheduler<T> {
    /// A scheduler over `table` draining in `mode`. The WDRR quantum is
    /// fixed at `1 / min_weight` (see module docs).
    pub fn new(table: TenantTable, mode: QueueMode) -> BatchScheduler<T> {
        assert!(!table.is_empty(), "scheduler needs at least one tenant");
        let min_w = table
            .iter()
            .map(|(_, _, p)| p.weight)
            .fold(f64::INFINITY, f64::min);
        let n = table.len();
        BatchScheduler {
            table,
            mode,
            quantum: COST / min_w,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            deficits: vec![0.0; n],
            cursor: 0,
            arrivals: VecDeque::new(),
            total: 0,
        }
    }

    /// The policy table the scheduler was built over.
    pub fn table(&self) -> &TenantTable {
        &self.table
    }

    /// The drain policy.
    pub fn mode(&self) -> QueueMode {
        self.mode
    }

    /// Total queued requests across all tenants.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Requests currently queued for tenant `tenant`.
    pub fn queue_depth(&self, tenant: usize) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Enqueues `item` for tenant index `tenant`, enforcing admission state
    /// and the queue-depth cap. Rejections leave every queue untouched.
    pub fn push(&mut self, tenant: usize, item: T) -> Result<(), AdmitError> {
        if tenant >= self.table.len() {
            return Err(AdmitError::UnknownTenant);
        }
        let policy = self.table.policy(tenant);
        if policy.admission == Admission::Closed {
            return Err(AdmitError::Closed);
        }
        let depth = self.queues[tenant].len();
        if depth >= policy.max_queue {
            return Err(AdmitError::QueueFull {
                depth,
                max: policy.max_queue,
            });
        }
        self.queues[tenant].push_back(item);
        if self.mode == QueueMode::Fifo {
            self.arrivals.push_back(tenant);
        }
        self.total += 1;
        Ok(())
    }

    /// Dequeues up to `max` requests as `(tenant index, item)` pairs in
    /// service order, according to the mode. Returns an empty vector when
    /// nothing is queued.
    pub fn next_batch(&mut self, max: usize) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(max.min(self.total));
        match self.mode {
            QueueMode::Fifo => {
                while out.len() < max {
                    let Some(i) = self.arrivals.pop_front() else {
                        break;
                    };
                    let item = self.queues[i]
                        .pop_front()
                        .expect("arrival order desynced from tenant queue");
                    self.total -= 1;
                    out.push((i, item));
                }
            }
            QueueMode::Wdrr => {
                let n = self.table.len();
                while out.len() < max && self.total > 0 {
                    let i = self.cursor;
                    if self.queues[i].is_empty() {
                        // Idle tenants forfeit credit — no hoarded bursts.
                        self.deficits[i] = 0.0;
                        self.cursor = (i + 1) % n;
                        continue;
                    }
                    // Top up only when below cost: a partial batch that
                    // stopped here mid-queue resumes on stored credit
                    // instead of earning a second quantum.
                    if self.deficits[i] < COST {
                        self.deficits[i] += self.quantum * self.table.policy(i).weight;
                    }
                    while self.deficits[i] >= COST && out.len() < max {
                        let Some(item) = self.queues[i].pop_front() else {
                            break;
                        };
                        self.deficits[i] -= COST;
                        self.total -= 1;
                        out.push((i, item));
                    }
                    if self.queues[i].is_empty() {
                        self.deficits[i] = 0.0;
                        self.cursor = (i + 1) % n;
                    } else if self.deficits[i] < COST {
                        // Credit spent: the visit is over even if the batch
                        // filled on the last pop — advancing here is what
                        // keeps singleton batches from starving everyone
                        // behind the cursor.
                        self.cursor = (i + 1) % n;
                    }
                    // else: credit left and queue backlogged, which only
                    // happens when the batch filled — keep the cursor so the
                    // next drain resumes here on the stored credit.
                }
            }
        }
        out
    }

    /// Empties every queue, returning the items as `(tenant index, item)`
    /// pairs — FIFO order in FIFO mode, tenant-index order otherwise. For
    /// shutdown paths that must resolve every pending request.
    pub fn drain_all(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.total);
        if self.mode == QueueMode::Fifo {
            while let Some(i) = self.arrivals.pop_front() {
                let item = self.queues[i]
                    .pop_front()
                    .expect("arrival order desynced from tenant queue");
                out.push((i, item));
            }
        } else {
            for (i, q) in self.queues.iter_mut().enumerate() {
                while let Some(item) = q.pop_front() {
                    out.push((i, item));
                }
            }
        }
        for d in &mut self.deficits {
            *d = 0.0;
        }
        self.total = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{TenantPolicy, TenantTable};

    fn table(weights: &[f64]) -> TenantTable {
        TenantTable::new(weights.iter().enumerate().map(|(i, &w)| {
            (
                format!("t{i}"),
                TenantPolicy {
                    weight: w,
                    ..TenantPolicy::default()
                },
            )
        }))
        .unwrap()
    }

    #[test]
    fn fifo_preserves_global_arrival_order() {
        let mut s = BatchScheduler::new(table(&[1.0, 1.0]), QueueMode::Fifo);
        s.push(0, "a0").unwrap();
        s.push(1, "b0").unwrap();
        s.push(0, "a1").unwrap();
        let batch = s.next_batch(10);
        assert_eq!(batch, vec![(0, "a0"), (1, "b0"), (0, "a1")]);
        assert!(s.is_empty());
    }

    #[test]
    fn wdrr_shares_track_weights_under_backlog() {
        // 3:1 weights, both saturated: served counts must track 3:1.
        let mut s = BatchScheduler::new(table(&[3.0, 1.0]), QueueMode::Wdrr);
        for k in 0..600 {
            s.push(0, k).unwrap();
            s.push(1, k).unwrap();
        }
        let mut counts = [0usize; 2];
        // Drain in small batches to exercise the persistent cursor.
        for _ in 0..100 {
            for (t, _) in s.next_batch(8) {
                counts[t] += 1;
            }
        }
        let total = counts[0] + counts[1];
        assert_eq!(total, 800);
        let share0 = counts[0] as f64 / total as f64;
        assert!(
            (share0 - 0.75).abs() < 0.02,
            "heavy tenant got {share0} of service, wanted ~0.75"
        );
    }

    #[test]
    fn wdrr_is_work_conserving_when_a_tenant_idles() {
        // Only the light tenant is backlogged: it gets everything.
        let mut s = BatchScheduler::new(table(&[100.0, 1.0]), QueueMode::Wdrr);
        for k in 0..32 {
            s.push(1, k).unwrap();
        }
        let batch = s.next_batch(32);
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|&(t, _)| t == 1));
    }

    #[test]
    fn idle_tenants_forfeit_deficit() {
        // Tenant 0 goes idle, then returns: it must not burst past its
        // weight share on hoarded credit.
        let mut s = BatchScheduler::new(table(&[1.0, 1.0]), QueueMode::Wdrr);
        for k in 0..100 {
            s.push(1, k).unwrap();
        }
        // Many sweeps while tenant 0 is idle (each visit resets its credit).
        while !s.is_empty() {
            s.next_batch(4);
        }
        for k in 0..50 {
            s.push(0, k).unwrap();
            s.push(1, k).unwrap();
        }
        let mut counts = [0usize; 2];
        for (t, _) in s.next_batch(40) {
            counts[t] += 1;
        }
        assert!(
            counts[0].abs_diff(counts[1]) <= 2,
            "equal weights must split a contended batch evenly, got {counts:?}"
        );
    }

    #[test]
    fn partial_batches_resume_without_double_credit() {
        // Weight 4:1 with batch size 1: over 20 singleton batches the split
        // must still be 16:4, proving leftover credit is kept but a resumed
        // visit is not topped up twice.
        let mut s = BatchScheduler::new(table(&[4.0, 1.0]), QueueMode::Wdrr);
        for k in 0..40 {
            s.push(0, k).unwrap();
            s.push(1, k).unwrap();
        }
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            for (t, _) in s.next_batch(1) {
                counts[t] += 1;
            }
        }
        assert_eq!(counts[0] + counts[1], 20);
        assert_eq!(counts[0], 16, "heavy tenant share drifted: {counts:?}");
    }

    #[test]
    fn extreme_weight_ratios_still_progress() {
        // The quantum normalization guarantees the tiny-weight tenant is
        // served on every visit, not starved for ~1e6 rounds.
        let mut s = BatchScheduler::new(table(&[1e6, 1e-3]), QueueMode::Wdrr);
        s.push(1, "tiny").unwrap();
        let batch = s.next_batch(4);
        assert_eq!(batch, vec![(1, "tiny")]);
    }

    #[test]
    fn admission_control_rejects_without_side_effects() {
        let t = TenantTable::new([
            (
                "open",
                TenantPolicy {
                    max_queue: 2,
                    ..TenantPolicy::default()
                },
            ),
            (
                "closed",
                TenantPolicy {
                    admission: Admission::Closed,
                    ..TenantPolicy::default()
                },
            ),
        ])
        .unwrap();
        let mut s = BatchScheduler::new(t, QueueMode::Wdrr);
        assert_eq!(s.push(5, 0), Err(AdmitError::UnknownTenant));
        assert_eq!(s.push(1, 0), Err(AdmitError::Closed));
        s.push(0, 1).unwrap();
        s.push(0, 2).unwrap();
        assert_eq!(
            s.push(0, 3),
            Err(AdmitError::QueueFull { depth: 2, max: 2 })
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.queue_depth(0), 2);
        assert_eq!(s.queue_depth(1), 0);
        // Rejected items never surface in a drain.
        let drained: Vec<i32> = s.drain_all().into_iter().map(|(_, v)| v).collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_all_returns_everything_in_both_modes() {
        for mode in [QueueMode::Fifo, QueueMode::Wdrr] {
            let mut s = BatchScheduler::new(table(&[1.0, 1.0]), mode);
            s.push(1, 10).unwrap();
            s.push(0, 20).unwrap();
            s.push(1, 11).unwrap();
            let all = s.drain_all();
            assert_eq!(all.len(), 3);
            assert!(s.is_empty());
            assert!(s.next_batch(8).is_empty());
            if mode == QueueMode::Fifo {
                assert_eq!(all, vec![(1, 10), (0, 20), (1, 11)]);
            } else {
                assert_eq!(all, vec![(0, 20), (1, 10), (1, 11)]);
            }
        }
    }
}
