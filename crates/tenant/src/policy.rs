//! Tenant identity and policy: who may submit, how much queue they get,
//! how strongly the scheduler favors them, and what slice of a shared
//! cache budget they own.
//!
//! A [`TenantTable`] is the immutable policy input to the scheduler — it is
//! built once (programmatically or from a `tenants.toml` file via
//! [`TenantTable::parse`]) and handed to the serving layer. Index positions
//! are stable for the lifetime of the table, so the scheduler and metrics
//! address tenants by `usize` index and only translate back to names at the
//! export boundary.

use std::fmt;

/// A tenant's name: non-empty, at most [`TenantId::MAX_LEN`] bytes, ASCII
/// printable without whitespace — safe to embed in Prometheus labels (after
/// escaping), file names, and config keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// Longest accepted tenant name in bytes.
    pub const MAX_LEN: usize = 128;

    /// Validates and wraps a tenant name.
    pub fn new(name: &str) -> Result<TenantId, PolicyError> {
        if name.is_empty() {
            return Err(PolicyError::BadTenantName {
                name: name.to_string(),
                reason: "empty name",
            });
        }
        if name.len() > Self::MAX_LEN {
            return Err(PolicyError::BadTenantName {
                name: name.to_string(),
                reason: "name longer than 128 bytes",
            });
        }
        if !name.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
            return Err(PolicyError::BadTenantName {
                name: name.to_string(),
                reason: "names are ASCII printable without whitespace",
            });
        }
        Ok(TenantId(name.to_string()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Whether a tenant's submissions are currently accepted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Accept submissions (the default).
    #[default]
    Open,
    /// Reject every submission with a typed error — for drain-before-remove
    /// maintenance or abuse response. Queued requests still complete.
    Closed,
}

/// Per-tenant QoS policy. All fields have serve-everyone defaults, so a
/// config only states what deviates.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Scheduling weight: the tenant's long-run share of served requests
    /// under contention is `weight / Σ weights`. Must be finite and > 0.
    pub weight: f64,
    /// Queue-depth cap: a submission arriving while this many requests are
    /// already queued for the tenant is rejected (backpressure). The
    /// default is effectively unlimited.
    pub max_queue: usize,
    /// Relative share of a partitioned cache budget (normalized across
    /// tenants by [`h2_cache::split_budget`]). Must be finite and ≥ 0.
    pub cache_share: f64,
    /// Admission state.
    pub admission: Admission,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1.0,
            max_queue: usize::MAX,
            cache_share: 1.0,
            admission: Admission::Open,
        }
    }
}

impl TenantPolicy {
    fn validate(&self, id: &TenantId) -> Result<(), PolicyError> {
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(PolicyError::BadPolicy {
                tenant: id.clone(),
                reason: "weight must be finite and > 0".to_string(),
            });
        }
        if self.max_queue == 0 {
            return Err(PolicyError::BadPolicy {
                tenant: id.clone(),
                reason: "max_queue must be >= 1 (use admission = \"closed\" to block)".to_string(),
            });
        }
        if !self.cache_share.is_finite() || self.cache_share < 0.0 {
            return Err(PolicyError::BadPolicy {
                tenant: id.clone(),
                reason: "cache_share must be finite and >= 0".to_string(),
            });
        }
        Ok(())
    }
}

/// Why a tenant table could not be built or parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A tenant name failed [`TenantId::new`] validation.
    BadTenantName {
        /// The offending name.
        name: String,
        /// What rule it broke.
        reason: &'static str,
    },
    /// The same tenant was declared twice.
    DuplicateTenant(TenantId),
    /// A policy field is out of range.
    BadPolicy {
        /// Which tenant.
        tenant: TenantId,
        /// What is wrong.
        reason: String,
    },
    /// A `tenants.toml` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser diagnostic.
        reason: String,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::BadTenantName { name, reason } => {
                write!(f, "bad tenant name {name:?}: {reason}")
            }
            PolicyError::DuplicateTenant(id) => write!(f, "tenant '{id}' declared twice"),
            PolicyError::BadPolicy { tenant, reason } => {
                write!(f, "bad policy for tenant '{tenant}': {reason}")
            }
            PolicyError::Parse { line, reason } => {
                write!(f, "tenants config line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// An immutable, validated set of tenants with stable indices.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantTable {
    ids: Vec<TenantId>,
    policies: Vec<TenantPolicy>,
}

impl TenantTable {
    /// Builds a table from `(name, policy)` pairs, validating names,
    /// policies, and uniqueness. Declaration order fixes the indices.
    pub fn new<I, S>(tenants: I) -> Result<TenantTable, PolicyError>
    where
        I: IntoIterator<Item = (S, TenantPolicy)>,
        S: AsRef<str>,
    {
        let mut ids: Vec<TenantId> = Vec::new();
        let mut policies = Vec::new();
        for (name, policy) in tenants {
            let id = TenantId::new(name.as_ref())?;
            if ids.contains(&id) {
                return Err(PolicyError::DuplicateTenant(id));
            }
            policy.validate(&id)?;
            ids.push(id);
            policies.push(policy);
        }
        Ok(TenantTable { ids, policies })
    }

    /// The single-tenant table every non-tenant-aware caller gets: one
    /// tenant named `default` with default policy (weight 1, unbounded
    /// queue, full cache share, open admission).
    pub fn single_default() -> TenantTable {
        TenantTable::new([("default", TenantPolicy::default())])
            .expect("static default tenant is valid")
    }

    /// Parses the `tenants.toml` dialect:
    ///
    /// ```toml
    /// # one section per tenant; every key optional
    /// [alice]
    /// weight = 8.0        # scheduling weight (> 0, default 1.0)
    /// max_queue = 64      # queue-depth cap (>= 1, default unlimited)
    /// cache_share = 0.5   # relative cache-budget share (>= 0, default 1.0)
    /// admission = "open"  # or "closed" (default open)
    ///
    /// [bob]
    /// weight = 1.0
    /// ```
    ///
    /// Comments (`# …`), blank lines, and whitespace around `=` are
    /// ignored. Unknown keys are errors — a typo silently granting default
    /// QoS would be worse than a parse failure.
    pub fn parse(text: &str) -> Result<TenantTable, PolicyError> {
        let mut tenants: Vec<(String, TenantPolicy)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or(PolicyError::Parse {
                    line: lineno,
                    reason: "unterminated section header".to_string(),
                })?;
                tenants.push((name.trim().to_string(), TenantPolicy::default()));
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(PolicyError::Parse {
                line: lineno,
                reason: format!("expected `key = value`, got {line:?}"),
            })?;
            let policy = &mut tenants
                .last_mut()
                .ok_or(PolicyError::Parse {
                    line: lineno,
                    reason: "key before any [tenant] section".to_string(),
                })?
                .1;
            let key = key.trim();
            let value = value.trim();
            let bad = |reason: String| PolicyError::Parse {
                line: lineno,
                reason,
            };
            match key {
                "weight" => {
                    policy.weight = value
                        .parse()
                        .map_err(|_| bad(format!("weight is not a number: {value:?}")))?;
                }
                "max_queue" => {
                    policy.max_queue = value
                        .parse()
                        .map_err(|_| bad(format!("max_queue is not an integer: {value:?}")))?;
                }
                "cache_share" => {
                    policy.cache_share = value
                        .parse()
                        .map_err(|_| bad(format!("cache_share is not a number: {value:?}")))?;
                }
                "admission" => {
                    policy.admission = match value.trim_matches('"') {
                        "open" => Admission::Open,
                        "closed" => Admission::Closed,
                        other => {
                            return Err(bad(format!(
                                "admission must be \"open\" or \"closed\", got {other:?}"
                            )))
                        }
                    };
                }
                other => {
                    return Err(bad(format!("unknown key {other:?}")));
                }
            }
        }
        if tenants.is_empty() {
            return Err(PolicyError::Parse {
                line: 0,
                reason: "no tenants declared".to_string(),
            });
        }
        TenantTable::new(tenants)
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the table has no tenants (only possible via `new([])`).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The index of tenant `name`, if declared.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.ids.iter().position(|id| id.as_str() == name)
    }

    /// Tenant id at `index`.
    pub fn id(&self, index: usize) -> &TenantId {
        &self.ids[index]
    }

    /// Policy at `index`.
    pub fn policy(&self, index: usize) -> &TenantPolicy {
        &self.policies[index]
    }

    /// Iterates `(index, id, policy)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TenantId, &TenantPolicy)> {
        self.ids
            .iter()
            .zip(self.policies.iter())
            .enumerate()
            .map(|(i, (id, p))| (i, id, p))
    }

    /// The tenants' cache shares in index order — the input to
    /// [`h2_cache::split_budget`] when partitioning a shared byte budget.
    pub fn cache_shares(&self) -> Vec<f64> {
        self.policies.iter().map(|p| p.cache_share).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_are_validated() {
        assert!(TenantId::new("alice").is_ok());
        assert!(TenantId::new("team-7/eu_west.prod").is_ok());
        assert!(TenantId::new("").is_err());
        assert!(TenantId::new("has space").is_err());
        assert!(TenantId::new("tab\there").is_err());
        assert!(TenantId::new(&"x".repeat(200)).is_err());
    }

    #[test]
    fn table_rejects_duplicates_and_bad_policies() {
        let dup = TenantTable::new([
            ("a", TenantPolicy::default()),
            ("a", TenantPolicy::default()),
        ]);
        assert!(matches!(dup, Err(PolicyError::DuplicateTenant(_))));

        let neg = TenantTable::new([(
            "a",
            TenantPolicy {
                weight: -1.0,
                ..TenantPolicy::default()
            },
        )]);
        assert!(matches!(neg, Err(PolicyError::BadPolicy { .. })));

        let zero_q = TenantTable::new([(
            "a",
            TenantPolicy {
                max_queue: 0,
                ..TenantPolicy::default()
            },
        )]);
        assert!(matches!(zero_q, Err(PolicyError::BadPolicy { .. })));
    }

    #[test]
    fn parse_round_trips_the_documented_dialect() {
        let text = r#"
            # fleet tenants
            [alice]
            weight = 8.0
            max_queue = 64
            cache_share = 0.5

            [bob]            # light tenant
            admission = "closed"
        "#;
        let t = TenantTable::parse(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.index_of("alice"), Some(0));
        assert_eq!(t.index_of("bob"), Some(1));
        assert_eq!(t.index_of("carol"), None);
        let a = t.policy(0);
        assert_eq!(a.weight, 8.0);
        assert_eq!(a.max_queue, 64);
        assert_eq!(a.cache_share, 0.5);
        assert_eq!(a.admission, Admission::Open);
        let b = t.policy(1);
        assert_eq!(b.weight, 1.0);
        assert_eq!(b.max_queue, usize::MAX);
        assert_eq!(b.admission, Admission::Closed);
        assert_eq!(t.cache_shares(), vec![0.5, 1.0]);
    }

    #[test]
    fn parse_rejects_malformed_input_with_line_numbers() {
        for (text, needle) in [
            ("weight = 2", "before any"),
            ("[a]\nweight = fast", "not a number"),
            ("[a]\nbogus_key = 1", "unknown key"),
            ("[a]\nadmission = \"maybe\"", "open"),
            ("[a\nweight = 1", "unterminated"),
            ("", "no tenants"),
            ("[a]\nweight 2", "key = value"),
        ] {
            let err = TenantTable::parse(text).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{text:?} -> {msg}");
        }
    }

    #[test]
    fn single_default_matches_legacy_service_behavior() {
        let t = TenantTable::single_default();
        assert_eq!(t.len(), 1);
        assert_eq!(t.index_of("default"), Some(0));
        assert_eq!(t.policy(0), &TenantPolicy::default());
    }
}
