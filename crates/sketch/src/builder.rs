//! The adaptive-rank sketched generator sweep.
//!
//! Mirrors the shape of `h2-core`'s nested-skeleton sweep — reverse level
//! order, rayon-parallel within each level, children's skeletons nested into
//! their parent's candidate rows — but replaces the anchor-net column set
//! with a randomized sketch per node and wraps the row ID in the adaptive
//! rank-doubling loop of Boukaram et al.

use crate::SketchParams;
use h2_kernels::{kernel_matrix, Kernel};
use h2_linalg::qr::Truncation;
use h2_linalg::sketch::test_matrix;
use h2_linalg::{CounterRng, Matrix};
use h2_points::admissibility::BlockLists;
use h2_points::tree::{ClusterTree, NodeId};
use h2_sampling::FarfieldRanges;
use rayon::prelude::*;

/// Aggregate counters of one sketched build.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SketchStats {
    /// Farfield columns evaluated for sketches (kernel columns, not probes).
    pub samples: usize,
    /// Probe columns evaluated for validation.
    pub probes: usize,
    /// Adaptive retries (rounds beyond each node's first).
    pub retries: usize,
    /// Largest number of rounds any node needed (1 = no doubling anywhere).
    pub max_rounds: usize,
    /// Time spent precomputing farfield ranges, in milliseconds (the
    /// sketched analogue of the anchor-net sampling sweep).
    pub sampling_ms: f64,
}

/// Per-node generators produced by the sketched sweep, in the exact shape
/// `h2-core` assembles into an `H2MatrixS`: everything factored in `f64`,
/// skeletons as indices of actual data points.
#[derive(Clone, Debug)]
pub struct SketchedGenerators {
    /// Leaf bases `U_i` (empty matrices for internal nodes).
    pub bases: Vec<Matrix>,
    /// Transfer matrices `R_c` (empty for the root).
    pub transfers: Vec<Matrix>,
    /// Per-node skeleton point indices (into the global point set).
    pub skeletons: Vec<Vec<usize>>,
    /// Per-node ranks.
    pub ranks: Vec<usize>,
    /// Aggregate build counters.
    pub stats: SketchStats,
}

/// RNG purposes within one `(node, round)` cell.
const PURPOSE_COLS: u64 = 0;
const PURPOSE_MIX: u64 = 1;
const PURPOSE_PROBE: u64 = 2;

/// One independent stream per `(node, round, purpose)` cell. Rounds are
/// bounded by the doubling loop (≤ 32 in any practical run) and purposes by
/// the constants above, so the packing below never collides across nodes.
fn stream(seed: u64, node: NodeId, round: usize, purpose: u64) -> CounterRng {
    CounterRng::stream(seed, ((node as u64) << 8) | ((round as u64) << 2) | purpose)
}

/// Outcome of one node's adaptive loop, shipped back to the sequential
/// assembly pass.
struct NodeResult {
    id: NodeId,
    skel_local: Vec<usize>,
    p: Matrix,
    rounds: usize,
    samples: usize,
    probes: usize,
}

/// Runs the adaptive sketch-and-validate loop for one node.
///
/// `rows` are global point indices (own points at leaves, children's
/// skeletons above). Returns skeleton positions *into `rows`* plus the
/// interpolation operator `P` with `K(rows, ·) ≈ P · K(rows[skel], ·)`.
fn sketch_node(
    id: NodeId,
    rows: &[usize],
    tree: &ClusterTree,
    far: &FarfieldRanges,
    kernel: &dyn Kernel,
    params: &SketchParams,
    seed: u64,
) -> NodeResult {
    let pts = tree.points();
    let m = rows.len();
    let total_far = far.total(id);
    if total_far == 0 || m == 0 {
        // Nothing admissible to compress against: rank 0, like the
        // anchor-net path when Y* is empty.
        return NodeResult {
            id,
            skel_local: Vec::new(),
            p: Matrix::zeros(m, 0),
            rounds: 0,
            samples: 0,
            probes: 0,
        };
    }

    let mut d = params.r0.clamp(1, params.max_rank);
    let mut round = 0usize;
    let mut samples = 0usize;
    let mut probes = 0usize;
    loop {
        let _sp = if round > 0 {
            Some(h2_telemetry::span_labeled(
                "build.adaptive_rank",
                format!("node={id} round={round} rank={d}"),
            ))
        } else {
            None
        };
        let width = (d + params.oversample).min(total_far);
        let want = (params.sample_factor * width).min(total_far);
        let mut crng = stream(seed, id, round, PURPOSE_COLS);
        let cols = far.sample(id, want, &mut crng);
        let b = kernel_matrix(kernel, pts, rows, &cols);
        samples += cols.len();
        h2_telemetry::counter_add!("sketch.samples", cols.len());

        // Mix down to `width` columns unless the farfield sample is already
        // that thin (then the sketch is the block itself).
        let y = if cols.len() > width {
            let mut mrng = stream(seed, id, round, PURPOSE_MIX);
            b.matmul(&test_matrix(params.kind, cols.len(), width, &mut mrng))
        } else {
            b
        };
        let rid = h2_linalg::id::row_id_consume(
            y,
            Truncation {
                rel_tol: params.id_tol,
                max_rank: d,
            },
        );

        // Validate against fresh probe columns the sketch never saw.
        let mut prng = stream(seed, id, round, PURPOSE_PROBE);
        let probe_cols = far.sample(id, params.probes, &mut prng);
        let bv = kernel_matrix(kernel, pts, rows, &probe_cols);
        probes += probe_cols.len();
        h2_telemetry::counter_add!("sketch.probes", probe_cols.len());
        let denom = bv.fro_norm();
        let resid = if denom == 0.0 {
            0.0
        } else {
            let approx = rid.p.matmul(&bv.select_rows(&rid.skel));
            approx.sub(&bv).fro_norm() / denom
        };

        // Exhausted escape hatches: rank can't grow past the candidate rows,
        // the configured cap, or a sketch that already covered the whole
        // farfield at full width.
        let saturated = d >= m || d >= params.max_rank || width == total_far;
        if resid <= params.resid_tol || saturated {
            return NodeResult {
                id,
                skel_local: rid.skel,
                p: rid.p,
                rounds: round + 1,
                samples,
                probes,
            };
        }
        h2_telemetry::counter_add!("sketch.retries", 1);
        d = (d * 2).min(params.max_rank);
        round += 1;
    }
}

/// Builds sketched generators for every node of `tree`.
///
/// Reverse level sweep; within a level, nodes run rayon-parallel. For a
/// fixed `seed` the result is bit-identical across runs and thread counts:
/// every random draw comes from a counter stream keyed by
/// `(seed, node, round, purpose)`, never from shared mutable state.
pub fn sketched_generators(
    tree: &ClusterTree,
    lists: &BlockLists,
    kernel: &dyn Kernel,
    params: &SketchParams,
    seed: u64,
) -> SketchedGenerators {
    // Farfield range precomputation is the sketched path's analogue of the
    // anchor-net sampling sweep — measured under the same span name so the
    // profile bench's phase table lines up across builders.
    let sp = h2_telemetry::span("build.sampling");
    let far = FarfieldRanges::build(tree, lists);
    let sampling_ms = sp.finish() * 1e3;

    let n_nodes = tree.node_count();
    let mut bases = vec![Matrix::zeros(0, 0); n_nodes];
    let mut transfers = vec![Matrix::zeros(0, 0); n_nodes];
    let mut skeletons: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    let mut ranks = vec![0usize; n_nodes];
    let mut stats = SketchStats {
        sampling_ms,
        ..SketchStats::default()
    };

    for (lvl, level) in tree.levels().iter().enumerate().rev() {
        let sp = h2_telemetry::span_labeled("build.sketch", format!("level={lvl}"));
        let computed: Vec<NodeResult> = level
            .par_iter()
            .map(|&i| {
                let nd = tree.node(i);
                let rows: Vec<usize> = if nd.is_leaf() {
                    tree.node_indices(i).to_vec()
                } else {
                    nd.children
                        .iter()
                        .flat_map(|&c| skeletons[c].iter().copied())
                        .collect()
                };
                sketch_node(i, &rows, tree, &far, kernel, params, seed)
            })
            .collect();
        drop(sp);

        let sp = h2_telemetry::span_labeled("build.transfers", format!("level={lvl}"));
        for r in computed {
            let nd = tree.node(r.id);
            let rows: Vec<usize> = if nd.is_leaf() {
                tree.node_indices(r.id).to_vec()
            } else {
                nd.children
                    .iter()
                    .flat_map(|&c| skeletons[c].iter().copied())
                    .collect()
            };
            let skel: Vec<usize> = r.skel_local.iter().map(|&k| rows[k]).collect();
            ranks[r.id] = skel.len();
            if nd.is_leaf() {
                bases[r.id] = r.p;
            } else {
                let mut off = 0;
                for &c in &nd.children {
                    let rc = ranks[c];
                    transfers[c] = r.p.block(off..off + rc, 0..r.p.ncols());
                    off += rc;
                }
            }
            skeletons[r.id] = skel;
            stats.samples += r.samples;
            stats.probes += r.probes;
            stats.retries += r.rounds.saturating_sub(1);
            stats.max_rounds = stats.max_rounds.max(r.rounds);
        }
        drop(sp);
    }

    SketchedGenerators {
        bases,
        transfers,
        skeletons,
        ranks,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchParams;
    use h2_kernels::kernel_by_name;
    use h2_points::admissibility::build_block_lists;
    use h2_points::gen;
    use h2_points::tree::TreeParams;

    fn setup(n: usize, dim: usize) -> (ClusterTree, BlockLists) {
        let pts = gen::uniform_cube(n, dim, 42);
        let tree = ClusterTree::build(&pts, TreeParams::with_leaf_size(48));
        let lists = build_block_lists(&tree, 0.7);
        (tree, lists)
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let (tree, lists) = setup(700, 2);
        let kernel = kernel_by_name("exp").unwrap();
        let params = SketchParams::for_tolerance(1e-6, 2);
        let a = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 11);
        let b = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 11);
        assert_eq!(a.skeletons, b.skeletons);
        assert_eq!(a.ranks, b.ranks);
        for (x, y) in a.bases.iter().zip(&b.bases) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        for (x, y) in a.transfers.iter().zip(&b.transfers) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        // A different seed picks (at least somewhere) different skeletons.
        let c = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 12);
        assert_ne!(a.skeletons, c.skeletons);
    }

    #[test]
    fn skeletons_nest_and_root_is_rank_zero() {
        let (tree, lists) = setup(600, 3);
        let kernel = kernel_by_name("coulomb3").unwrap();
        let params = SketchParams::for_tolerance(1e-6, 3);
        let g = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 7);
        assert_eq!(g.ranks[tree.root()], 0);
        for id in 0..tree.node_count() {
            let nd = tree.node(id);
            assert_eq!(g.ranks[id], g.skeletons[id].len());
            let own: std::collections::HashSet<usize> = if nd.is_leaf() {
                tree.node_indices(id).iter().copied().collect()
            } else {
                nd.children
                    .iter()
                    .flat_map(|&c| g.skeletons[c].iter().copied())
                    .collect()
            };
            // Nesting: every skeleton point comes from the candidate rows.
            assert!(g.skeletons[id].iter().all(|p| own.contains(p)), "node {id}");
            // Shapes: leaf bases are m x rank; transfers rank_c x rank_parent.
            if nd.is_leaf() {
                assert_eq!(g.bases[id].shape(), (nd.len(), g.ranks[id]));
            } else {
                for &c in &nd.children {
                    assert_eq!(g.transfers[c].nrows(), g.ranks[c]);
                    assert_eq!(g.transfers[c].ncols(), g.ranks[id]);
                }
            }
        }
    }

    #[test]
    fn interpolation_validates_on_fresh_probes() {
        let (tree, lists) = setup(500, 2);
        let kernel = kernel_by_name("gaussian").unwrap();
        let tol = 1e-6;
        let params = SketchParams::for_tolerance(tol, 2);
        let g = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 3);
        let far = FarfieldRanges::build(&tree, &lists);
        let pts = tree.points();
        let mut rng = CounterRng::new(999);
        for id in 0..tree.node_count() {
            if far.total(id) == 0 || g.ranks[id] == 0 {
                continue;
            }
            let nd = tree.node(id);
            let rows: Vec<usize> = if nd.is_leaf() {
                tree.node_indices(id).to_vec()
            } else {
                nd.children
                    .iter()
                    .flat_map(|&c| g.skeletons[c].iter().copied())
                    .collect()
            };
            let probe = far.sample(id, 24, &mut rng);
            let bv = kernel_matrix(kernel.as_ref(), pts, &rows, &probe);
            let p = if nd.is_leaf() {
                g.bases[id].clone()
            } else {
                // Reassemble P from the children's transfer blocks.
                let blocks: Vec<&Matrix> = nd.children.iter().map(|&c| &g.transfers[c]).collect();
                Matrix::vstack(&blocks)
            };
            let bs = kernel_matrix(kernel.as_ref(), pts, &g.skeletons[id], &probe);
            let err = p.matmul(&bs).sub(&bv).fro_norm() / bv.fro_norm().max(1e-300);
            assert!(err < 50.0 * tol, "node {id}: probe residual {err:.3e}");
        }
    }

    #[test]
    fn adaptive_loop_converges_from_tiny_r0() {
        // Deliberately undersized r0 forces doubling; the loop must still
        // land on an accurate basis and record the retries.
        let (tree, lists) = setup(400, 2);
        let kernel = kernel_by_name("exp").unwrap();
        let mut params = SketchParams::for_tolerance(1e-5, 2);
        params.r0 = 2;
        let g = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 5);
        assert!(g.stats.retries > 0, "r0=2 must trigger doubling");
        assert!(g.stats.max_rounds > 1);
        // And the ranks must have grown past the initial guess somewhere.
        assert!(g.ranks.iter().any(|&r| r > 2));
    }

    #[test]
    fn stats_account_for_samples_and_probes() {
        let (tree, lists) = setup(300, 2);
        let kernel = kernel_by_name("imq").unwrap();
        let params = SketchParams::for_tolerance(1e-4, 2);
        let g = sketched_generators(&tree, &lists, kernel.as_ref(), &params, 1);
        assert!(g.stats.samples > 0);
        assert!(g.stats.probes > 0);
        assert!(g.stats.sampling_ms >= 0.0);
        assert!(g.stats.max_rounds >= 1);
    }
}
