//! # h2-sketch
//!
//! Randomized **sketched construction** of H² bases — the second construction
//! path of this workspace, next to the paper's anchor-net sampling.
//!
//! Instead of summarizing each node's farfield with a carefully chosen
//! anchor-net sample set `Y_i*` (an O(n) but constant-heavy hierarchical
//! sweep), the sketched builder follows the randomized recipe of *Adaptive
//! Sketching Based Construction of H2 Matrices on GPUs* (Boukaram et al.) and
//! the Hatrix exemplar: draw a handful of **uniform farfield columns**, mix
//! them with a Gaussian or SRHT test matrix, and row-ID the thin sketch
//!
//! ```text
//! Y_i = K(X_i, C_i) · Ω_i          (m_i × (d + p),  |C_i| = c·(d + p))
//! ```
//!
//! The skeleton the ID picks from `Y_i` is validated against *fresh* random
//! probe columns; on failure the target rank `d` **doubles** and the node is
//! re-sketched — the adaptive-rank loop. Because skeletons are still indices
//! of actual data points, the assembled operator keeps the kernel-submatrix
//! coupling structure (`B_{ij} = K(S_i, S_j)`), so both memory modes, the
//! block cache, and the persistence codec work unchanged.
//!
//! Everything is driven by counter-based RNG streams keyed by
//! `(seed, node, round, purpose)`, so a build is **bit-reproducible** for a
//! fixed seed regardless of thread count or scheduling.
//!
//! The output ([`SketchedGenerators`]) is adapter-shaped for
//! `h2-core`'s builder pipeline; `h2-core` selects this path through its
//! `BuilderStrategy::Sketched` configuration.

pub mod builder;

pub use builder::{sketched_generators, SketchStats, SketchedGenerators};
pub use h2_linalg::{CounterRng, SketchKind};

/// Tuning knobs of the sketched builder.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchParams {
    /// Initial target rank `r₀` of the adaptive loop (also the ID rank cap
    /// of the first round).
    pub r0: usize,
    /// Extra sketch columns beyond the target rank (`p` in HMT notation).
    pub oversample: usize,
    /// Farfield columns drawn per sketch column: `|C_i| = sample_factor ·
    /// (d + oversample)`. Larger values make the uniform column sample a
    /// better stand-in for the full farfield at linear extra cost.
    pub sample_factor: usize,
    /// Fresh probe columns used to validate each node's skeleton.
    pub probes: usize,
    /// Hard cap on the adaptive rank doubling.
    pub max_rank: usize,
    /// Test-matrix ensemble.
    pub kind: SketchKind,
    /// Relative tolerance of the per-node row ID (mirrors the anchor-net
    /// builder's `id_tol`).
    pub id_tol: f64,
    /// Acceptance threshold on the relative probe residual
    /// `‖K(X,V) − P·K(S,V)‖_F / ‖K(X,V)‖_F`.
    pub resid_tol: f64,
}

impl SketchParams {
    /// Parameters sized for a target relative accuracy in `dim` dimensions.
    ///
    /// `r₀` matches the anchor-net per-node sample budget for the same
    /// tolerance (`SampleParams::for_tolerance`), so for well-behaved kernels
    /// the first round already brackets the final rank and doubling is rare;
    /// `id_tol = tol·0.1` follows the anchor-net convention, and the probe
    /// residual is accepted at `tol` itself.
    pub fn for_tolerance(tol: f64, dim: usize) -> Self {
        let digits = (-tol.log10()).clamp(1.0, 16.0);
        let base = (8.0 * digits) * (dim.max(2) as f64) / 2.0;
        let r0 = (base as usize).clamp(24, 600);
        SketchParams {
            r0,
            oversample: 10,
            sample_factor: 2,
            probes: 16,
            max_rank: (8 * r0).min(4096),
            kind: SketchKind::Gaussian,
            id_tol: tol * 0.1,
            resid_tol: tol,
        }
    }
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams::for_tolerance(1e-8, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tolerance_scales_with_accuracy() {
        let loose = SketchParams::for_tolerance(1e-2, 3);
        let tight = SketchParams::for_tolerance(1e-10, 3);
        assert!(tight.r0 > loose.r0);
        assert!(tight.id_tol < loose.id_tol);
        assert!(loose.r0 >= 24 && tight.r0 <= 600);
        assert_eq!(loose.kind, SketchKind::Gaussian);
    }

    #[test]
    fn default_matches_core_default_tolerance() {
        let d = SketchParams::default();
        assert!((d.resid_tol - 1e-8).abs() < 1e-20);
        assert!(d.max_rank >= d.r0);
    }
}
