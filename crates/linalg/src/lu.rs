//! LU factorization with partial pivoting, solves, inverse, and
//! pseudo-inverse helpers.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// LU factorization with partial (row) pivoting: `P A = L U`.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Compact LU (U upper incl. diagonal, unit-diagonal L strictly lower).
    fact: Matrix,
    /// Row permutation: `piv[k]` = row swapped into position k at step k.
    piv: Vec<usize>,
}

impl Lu {
    /// Factorizes the square matrix `a` (consumed).
    pub fn new(mut a: Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "LU needs a square matrix, got {m} x {n}"
            )));
        }
        let mut piv = vec![0usize; n];
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below diagonal.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            piv[k] = p;
            if best == 0.0 {
                return Err(LinalgError::Singular(k));
            }
            if p != k {
                a.swap_rows(k, p);
            }
            let akk = a[(k, k)];
            // Scale multipliers and eliminate.
            for i in (k + 1)..n {
                a[(i, k)] /= akk;
            }
            for j in (k + 1)..n {
                let akj = a[(k, j)];
                if akj != 0.0 {
                    // a[i, j] -= a[i, k] * akj for i > k; use raw column split
                    // to keep the inner loop tight.
                    let nrows = n;
                    let (lo, hi) = (k * nrows, j * nrows);
                    let data = a.as_mut_slice();
                    for i in (k + 1)..n {
                        let lik = data[lo + i];
                        data[hi + i] -= lik * akj;
                    }
                }
            }
        }
        Ok(Lu { fact: a, piv })
    }

    /// Solves `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.fact.nrows();
        assert_eq!(b.len(), n, "lu solve: rhs length");
        // Apply the permutation.
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution with unit-lower L.
        for i in 1..n {
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().take(i) {
                s -= self.fact[(i, j)] * bj;
            }
            b[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().skip(i + 1) {
                s -= self.fact[(i, j)] * bj;
            }
            b[i] = s / self.fact[(i, i)];
        }
    }

    /// Solves `A x = b` (allocating).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A X = B` for a matrix right-hand side.
    pub fn solve_mat(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        for j in 0..x.ncols() {
            self.solve_in_place(x.col_mut(j));
        }
        x
    }

    /// The inverse (for small matrices / tests).
    pub fn inverse(&self) -> Matrix {
        self.solve_mat(&Matrix::identity(self.fact.nrows()))
    }

    /// Determinant (product of U diagonal with pivot sign).
    pub fn det(&self) -> f64 {
        let n = self.fact.nrows();
        let mut d = 1.0;
        for k in 0..n {
            d *= self.fact[(k, k)];
            if self.piv[k] != k {
                d = -d;
            }
        }
        d
    }
}

/// Convenience: solve a dense square system once.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Ok(Lu::new(a.clone())?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn solve_recovers_solution() {
        let n = 12;
        let mut a = rand_matrix(n, n, 5);
        for i in 0..n {
            a[(i, i)] += 4.0; // diagonally dominant: well conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 3.0) * 0.5).collect();
        let b = a.matvec(&x_true);
        let x = Lu::new(a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let n = 8;
        let mut a = rand_matrix(n, n, 6);
        for i in 0..n {
            a[(i, i)] += 3.0;
        }
        let inv = Lu::new(a.clone()).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.sub(&Matrix::identity(n)).max_abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = rand_matrix(5, 5, 7);
        // Make row 3 a copy of row 1.
        for j in 0..5 {
            let v = a[(1, j)];
            a[(3, j)] = v;
        }
        assert!(matches!(Lu::new(a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(Lu::new(a), Err(LinalgError::DimensionMismatch(_))));
    }

    #[test]
    fn det_of_permutation() {
        // A permutation matrix has determinant +-1.
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 1.0;
        p[(1, 0)] = 1.0;
        p[(2, 2)] = 1.0;
        let lu = Lu::new(p).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::new(a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }
}
