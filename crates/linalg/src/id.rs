//! Interpolative decompositions (ID).
//!
//! A **column ID** of an `m x n` matrix `A` with tolerance `eps` is
//!
//! ```text
//! A  ≈  A[:, J] · Z          Z = [ I  T ] · P^T,   |J| = rank,
//! ```
//!
//! i.e. every column of `A` is expressed as a combination of a few selected
//! *skeleton* columns `J`. A **row ID** is the transpose statement
//!
//! ```text
//! A  ≈  P_interp · A[I, :]
//! ```
//!
//! Row IDs are the core primitive of the data-driven H² construction: the
//! selected rows `I` of `K(X_i, Y_i*)` are the skeleton points of node `i`,
//! and `P_interp` is the node's basis (leaf) or transfer (internal) matrix.
//!
//! Both are computed from a rank-revealing column-pivoted QR
//! ([`crate::qr::PivotedQr`]), with the interpolation coefficients obtained
//! by a triangular solve `T = R11^{-1} R12`.

use crate::matrix::MatrixS;
use crate::qr::{PivotedQr, Truncation};
use crate::scalar::Scalar;

/// Result of a column interpolative decomposition: `A ≈ A[:, skel] * z`.
#[derive(Clone, Debug)]
pub struct ColumnId<S: Scalar = f64> {
    /// Indices of the skeleton columns (into the original matrix).
    pub skel: Vec<usize>,
    /// Coefficient matrix `Z` (`rank x n`) with `A ≈ A[:, skel] * Z`.
    pub z: MatrixS<S>,
}

/// Result of a row interpolative decomposition: `A ≈ p * A[skel, :]`.
#[derive(Clone, Debug)]
pub struct RowId<S: Scalar = f64> {
    /// Indices of the skeleton rows (into the original matrix).
    pub skel: Vec<usize>,
    /// Interpolation operator `P` (`m x rank`) with `A ≈ P * A[skel, :]`.
    pub p: MatrixS<S>,
}

/// Computes a column ID of `a` at the given truncation.
pub fn column_id<S: Scalar>(a: &MatrixS<S>, trunc: Truncation) -> ColumnId<S> {
    let n = a.ncols();
    let pqr = PivotedQr::new(a.clone(), trunc);
    let k = pqr.rank();
    let t = pqr.interp_coeffs(); // k x (n - k), in pivoted order
    let perm = pqr.perm();
    let skel: Vec<usize> = perm[..k].to_vec();
    // Z in original column order: Z[:, perm[j]] = e_j for j < k,
    // Z[:, perm[k + j]] = T[:, j].
    let mut z = MatrixS::zeros(k, n);
    for (j, &pj) in perm.iter().enumerate() {
        if j < k {
            z[(j, pj)] = S::ONE;
        } else {
            for i in 0..k {
                z[(i, pj)] = t[(i, j - k)];
            }
        }
    }
    ColumnId { skel, z }
}

/// Computes a row ID of `a` at the given truncation (column ID of `a^T`).
pub fn row_id<S: Scalar>(a: &MatrixS<S>, trunc: Truncation) -> RowId<S> {
    let cid = column_id(&a.transpose(), trunc);
    RowId {
        skel: cid.skel,
        p: cid.z.transpose(),
    }
}

/// Row ID computed directly from a matrix that is *consumed* (avoids one
/// clone on the hot construction path).
pub fn row_id_consume<S: Scalar>(a: MatrixS<S>, trunc: Truncation) -> RowId<S> {
    let at = a.transpose();
    drop(a);
    let n = at.ncols();
    let pqr = PivotedQr::new(at, trunc);
    let k = pqr.rank();
    let t = pqr.interp_coeffs();
    let perm = pqr.perm();
    let skel: Vec<usize> = perm[..k].to_vec();
    let mut p = MatrixS::zeros(n, k);
    for (j, &pj) in perm.iter().enumerate() {
        if j < k {
            p[(pj, j)] = S::ONE;
        } else {
            for i in 0..k {
                p[(pj, i)] = t[(i, j - k)];
            }
        }
    }
    RowId { skel, p }
}

/// Low-rank approximation error `||A - A[:,J] Z||_F / ||A||_F` of a column
/// ID (test/diagnostic helper; reported in `f64` regardless of `S`).
pub fn column_id_rel_err<S: Scalar>(a: &MatrixS<S>, id: &ColumnId<S>) -> f64 {
    let rec = a.select_cols(&id.skel).matmul(&id.z);
    let denom = a.fro_norm().to_f64();
    if denom == 0.0 {
        return 0.0;
    }
    rec.sub(a).fro_norm().to_f64() / denom
}

/// Low-rank approximation error of a row ID.
pub fn row_id_rel_err<S: Scalar>(a: &MatrixS<S>, id: &RowId<S>) -> f64 {
    let rec = id.p.matmul(&a.select_rows(&id.skel));
    let denom = a.fro_norm().to_f64();
    if denom == 0.0 {
        return 0.0;
    }
    rec.sub(a).fro_norm().to_f64() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn low_rank(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
        rand_matrix(m, r, seed).matmul(&rand_matrix(r, n, seed + 1))
    }

    #[test]
    fn column_id_exact_on_low_rank() {
        let a = low_rank(16, 12, 4, 3);
        let id = column_id(&a, Truncation::tol(1e-12));
        assert_eq!(id.skel.len(), 4);
        assert!(column_id_rel_err(&a, &id) < 1e-10);
    }

    #[test]
    fn row_id_exact_on_low_rank() {
        let a = low_rank(14, 18, 5, 8);
        let id = row_id(&a, Truncation::tol(1e-12));
        assert_eq!(id.skel.len(), 5);
        assert!(row_id_rel_err(&a, &id) < 1e-10);
    }

    #[test]
    fn row_id_consume_matches_row_id() {
        let a = low_rank(11, 9, 3, 5);
        let id1 = row_id(&a, Truncation::tol(1e-12));
        let id2 = row_id_consume(a.clone(), Truncation::tol(1e-12));
        assert_eq!(id1.skel, id2.skel);
        assert!(id1.p.sub(&id2.p).max_abs() < 1e-13);
    }

    #[test]
    fn skeleton_rows_interpolate_exactly() {
        // P restricted to skeleton rows must be the identity.
        let a = low_rank(10, 8, 3, 17);
        let id = row_id(&a, Truncation::tol(1e-12));
        let p_skel = id.p.select_rows(&id.skel);
        assert!(p_skel.sub(&Matrix::identity(id.skel.len())).max_abs() < 1e-12);
    }

    #[test]
    fn row_id_f32_low_rank() {
        // The same decomposition carried out natively in f32 still finds
        // the exact rank and interpolates to single-precision accuracy.
        let a32: MatrixS<f32> = low_rank(14, 18, 5, 8).convert();
        let id = row_id(&a32, Truncation::tol(1e-5));
        assert_eq!(id.skel.len(), 5);
        assert!(row_id_rel_err(&a32, &id) < 1e-4);
    }

    #[test]
    fn tolerance_controls_rank_and_error() {
        // Matrix with geometrically decaying singular values.
        let n = 24;
        let u = rand_matrix(n, n, 1);
        let qu = crate::qr::Qr::new(u).q();
        let v = rand_matrix(n, n, 2);
        let qv = crate::qr::Qr::new(v).q();
        let mut s = Matrix::zeros(n, n);
        for i in 0..n {
            s[(i, i)] = 10f64.powi(-(i as i32) / 2);
        }
        let a = qu.matmul(&s).matmul_t(&qv);
        let loose = row_id(&a, Truncation::tol(1e-3));
        let tight = row_id(&a, Truncation::tol(1e-8));
        assert!(loose.skel.len() < tight.skel.len());
        assert!(row_id_rel_err(&a, &loose) < 1e-2);
        assert!(row_id_rel_err(&a, &tight) < 1e-6);
    }

    #[test]
    fn rank_capped_id() {
        let a = rand_matrix(20, 20, 4);
        let id = column_id(&a, Truncation::rank(6));
        assert_eq!(id.skel.len(), 6);
        assert_eq!(id.z.shape(), (6, 20));
    }

    #[test]
    fn id_of_zero_matrix_is_rank_zero() {
        let a = Matrix::zeros(7, 5);
        let id = column_id(&a, Truncation::tol(1e-10));
        assert_eq!(id.skel.len(), 0);
        assert_eq!(column_id_rel_err(&a, &id), 0.0);
    }

    #[test]
    fn id_of_empty_matrix() {
        let a = Matrix::zeros(0, 5);
        let id = column_id(&a, Truncation::tol(1e-10));
        assert_eq!(id.skel.len(), 0);
        let b = Matrix::zeros(5, 0);
        let id = row_id(&b, Truncation::tol(1e-10));
        assert_eq!(id.skel.len(), 0);
    }
}
