//! Dense column-major matrix type.
//!
//! [`MatrixS`] stores entries of any [`Scalar`] contiguously column by
//! column, the layout used by LAPACK and friendliest to the column-oriented
//! factorizations in this crate (Householder QR sweeps whole columns).
//! Row-major callers can use [`MatrixS::transpose`]. The [`Matrix`] alias
//! pins `S = f64`, which is what almost all call sites mean.
//!
//! The apply methods (`matvec*`) take a second scalar parameter `A` for the
//! vector type: entries are promoted `S -> A` during accumulation. With
//! `A = S` this is the plain same-precision product (promotion is the
//! identity); with `S = f32, A = f64` it is the mixed-precision mode —
//! `f32` storage, `f64` accumulation.

use crate::blas;
use crate::scalar::Scalar;
use crate::slab::SlabSlice;

/// A dense column-major matrix over a [`Scalar`] element type.
///
/// Entry `(i, j)` lives at `data[i + j * nrows]`. The type is deliberately
/// small: a buffer plus two dimensions. The buffer is normally an owned
/// `Vec<S>`, but [`MatrixS::from_slab`] wraps a read-only [`SlabSlice`]
/// view (an `mmap`ed operator file) instead — every read path works
/// identically on both backings, and the first mutation promotes a mapped
/// buffer to an owned copy (copy-on-write), so mutating call sites never
/// observe the difference.
#[derive(Clone, Debug, Default)]
pub struct MatrixS<S: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    data: Buf<S>,
}

/// The storage behind a [`MatrixS`]: owned heap data or a borrowed view
/// into a shared read-only slab.
#[derive(Clone, Debug)]
enum Buf<S: Scalar> {
    Owned(Vec<S>),
    Mapped(SlabSlice<S>),
}

impl<S: Scalar> Default for Buf<S> {
    fn default() -> Self {
        Buf::Owned(Vec::new())
    }
}

impl<S: Scalar> Buf<S> {
    #[inline]
    fn as_slice(&self) -> &[S] {
        match self {
            Buf::Owned(v) => v,
            Buf::Mapped(m) => m.as_slice(),
        }
    }

    /// Copy-on-write promotion: a mapped buffer becomes an owned copy the
    /// first time mutable access is requested.
    #[inline]
    fn make_owned(&mut self) -> &mut Vec<S> {
        if let Buf::Mapped(m) = self {
            *self = Buf::Owned(m.as_slice().to_vec());
        }
        match self {
            Buf::Owned(v) => v,
            Buf::Mapped(_) => unreachable!("promoted above"),
        }
    }

    fn into_vec(self) -> Vec<S> {
        match self {
            Buf::Owned(v) => v,
            Buf::Mapped(m) => m.as_slice().to_vec(),
        }
    }
}

impl<S: Scalar> PartialEq for MatrixS<S> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.as_slice() == other.as_slice()
    }
}

/// The `f64` matrix every pre-existing call site works with.
pub type Matrix = MatrixS<f64>;

impl<S: Scalar> MatrixS<S> {
    /// Creates an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MatrixS {
            nrows,
            ncols,
            data: Buf::Owned(vec![S::ZERO; nrows * ncols]),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = MatrixS::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::ONE;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        MatrixS {
            nrows,
            ncols,
            data: Buf::Owned(data),
        }
    }

    /// Wraps an existing column-major buffer. `data.len()` must equal
    /// `nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} != {} x {}",
            data.len(),
            nrows,
            ncols
        );
        MatrixS {
            nrows,
            ncols,
            data: Buf::Owned(data),
        }
    }

    /// Wraps a read-only slab view as a matrix without copying — the
    /// zero-copy backing used by `mmap`ed operator files. `data.len()` must
    /// equal `nrows * ncols`. Read paths (including every `matvec*` apply)
    /// run the exact same code as on owned storage; the first mutation
    /// promotes the buffer to an owned copy.
    pub fn from_slab(nrows: usize, ncols: usize, data: SlabSlice<S>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "slab view length {} != {} x {}",
            data.len(),
            nrows,
            ncols
        );
        MatrixS {
            nrows,
            ncols,
            data: Buf::Mapped(data),
        }
    }

    /// True when the buffer is a borrowed slab view rather than owned heap
    /// data.
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Buf::Mapped(_))
    }

    /// Bytes of this matrix backed by a shared slab (0 for owned storage).
    /// The complement of [`MatrixS::bytes`] for memory accounting: mapped
    /// pages belong to the file mapping / page cache, not this process's
    /// heap.
    pub fn mapped_bytes(&self) -> usize {
        match &self.data {
            Buf::Owned(_) => 0,
            Buf::Mapped(m) => m.len() * S::BYTES,
        }
    }

    /// Builds a matrix from row-major data (convenient in tests).
    pub fn from_rows(rows: &[Vec<S>]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
        }
        MatrixS::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// Entrywise conversion to another scalar type (through `f64`; exact
    /// unless narrowing to `f32`).
    pub fn convert<T: Scalar>(&self) -> MatrixS<T> {
        MatrixS {
            nrows: self.nrows,
            ncols: self.ncols,
            data: Buf::Owned(self.as_slice().iter().map(|v| v.promote()).collect()),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// True if either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0 || self.ncols == 0
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying column-major buffer (promotes a
    /// mapped buffer to an owned copy first).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        self.data.make_owned()
    }

    /// Consumes the matrix, returning its buffer (copied out of the slab
    /// for mapped storage).
    pub fn into_vec(self) -> Vec<S> {
        self.data.into_vec()
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        debug_assert!(j < self.ncols);
        &self.data.as_slice()[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        let nrows = self.nrows;
        debug_assert!(j < self.ncols);
        &mut self.data.make_owned()[j * nrows..(j + 1) * nrows]
    }

    /// Two distinct columns, mutably (used by pivoted QR for swaps).
    pub fn cols_mut_pair(&mut self, a: usize, b: usize) -> (&mut [S], &mut [S]) {
        assert_ne!(a, b);
        let n = self.nrows;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.make_owned().split_at_mut(hi * n);
        let first = &mut left[lo * n..(lo + 1) * n];
        let second = &mut right[..n];
        if a < b {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Copies row `i` into a new vector.
    pub fn row(&self, i: usize) -> Vec<S> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Swaps columns `a` and `b`.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ca, cb) = self.cols_mut_pair(a, b);
        ca.swap_with_slice(cb);
    }

    /// Swaps rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (nrows, ncols) = (self.nrows, self.ncols);
        let data = self.data.make_owned();
        for j in 0..ncols {
            data.swap(a + j * nrows, b + j * nrows);
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> MatrixS<S> {
        let mut t = MatrixS::zeros(self.ncols, self.nrows);
        let src = self.as_slice();
        let dst = t.data.make_owned();
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for jb in (0..self.ncols).step_by(B) {
            for ib in (0..self.nrows).step_by(B) {
                for j in jb..(jb + B).min(self.ncols) {
                    for i in ib..(ib + B).min(self.nrows) {
                        dst[j + i * self.ncols] = src[i + j * self.nrows];
                    }
                }
            }
        }
        t
    }

    /// Extracts the submatrix with the given row and column index lists
    /// (indices may repeat and need not be sorted).
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> MatrixS<S> {
        MatrixS::from_fn(rows.len(), cols.len(), |i, j| self[(rows[i], cols[j])])
    }

    /// Extracts the given rows (all columns).
    pub fn select_rows(&self, rows: &[usize]) -> MatrixS<S> {
        MatrixS::from_fn(rows.len(), self.ncols, |i, j| self[(rows[i], j)])
    }

    /// Extracts the given columns (all rows).
    pub fn select_cols(&self, cols: &[usize]) -> MatrixS<S> {
        let mut out = MatrixS::zeros(self.nrows, cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            out.col_mut(jj).copy_from_slice(self.col(j));
        }
        out
    }

    /// Contiguous block `rows.start..rows.end` x `cols.start..cols.end`.
    pub fn block(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> MatrixS<S> {
        assert!(rows.end <= self.nrows && cols.end <= self.ncols);
        let mut out = MatrixS::zeros(rows.len(), cols.len());
        for (jj, j) in cols.clone().enumerate() {
            out.col_mut(jj)
                .copy_from_slice(&self.col(j)[rows.start..rows.end]);
        }
        out
    }

    /// Writes `src` into the block starting at `(row0, col0)`.
    pub fn set_block(&mut self, row0: usize, col0: usize, src: &MatrixS<S>) {
        assert!(row0 + src.nrows <= self.nrows && col0 + src.ncols <= self.ncols);
        for j in 0..src.ncols {
            let dst = &mut self.col_mut(col0 + j)[row0..row0 + src.nrows];
            dst.copy_from_slice(src.col(j));
        }
    }

    /// Vertically stacks matrices (all must share a column count).
    pub fn vstack(parts: &[&MatrixS<S>]) -> MatrixS<S> {
        if parts.is_empty() {
            return MatrixS::zeros(0, 0);
        }
        let ncols = parts[0].ncols;
        let nrows: usize = parts.iter().map(|p| p.nrows).sum();
        let mut out = MatrixS::zeros(nrows, ncols);
        let mut r = 0;
        for p in parts {
            assert_eq!(p.ncols, ncols, "vstack: column mismatch");
            out.set_block(r, 0, p);
            r += p.nrows;
        }
        out
    }

    /// Horizontally stacks matrices (all must share a row count).
    pub fn hstack(parts: &[&MatrixS<S>]) -> MatrixS<S> {
        if parts.is_empty() {
            return MatrixS::zeros(0, 0);
        }
        let nrows = parts[0].nrows;
        let ncols: usize = parts.iter().map(|p| p.ncols).sum();
        let mut out = MatrixS::zeros(nrows, ncols);
        let mut c = 0;
        for p in parts {
            assert_eq!(p.nrows, nrows, "hstack: row mismatch");
            out.set_block(0, c, p);
            c += p.ncols;
        }
        out
    }

    /// `y = self * x` (allocating). Entries are promoted `S -> A`, so with
    /// `A = f64` over `f32` storage this is the mixed-precision apply.
    pub fn matvec<A: Scalar>(&self, x: &[A]) -> Vec<A> {
        let mut y = vec![A::ZERO; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = self * x`, writing into `y` (overwrites).
    pub fn matvec_into<A: Scalar>(&self, x: &[A], y: &mut [A]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length");
        assert_eq!(y.len(), self.nrows, "matvec: y length");
        y.fill(A::ZERO);
        self.matvec_acc(x, y);
    }

    /// `y += self * x` (accumulating, no allocation).
    pub fn matvec_acc<A: Scalar>(&self, x: &[A], y: &mut [A]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        for (j, &xj) in x.iter().enumerate() {
            if xj != A::ZERO {
                blas::axpy(xj, self.col(j), y);
            }
        }
    }

    /// `y = self^T * x` (allocating).
    pub fn matvec_t<A: Scalar>(&self, x: &[A]) -> Vec<A> {
        let mut y = vec![A::ZERO; self.ncols];
        self.matvec_t_into(x, &mut y);
        y
    }

    /// `y = self^T * x`, writing into `y` (overwrites).
    pub fn matvec_t_into<A: Scalar>(&self, x: &[A], y: &mut [A]) {
        assert_eq!(x.len(), self.nrows, "matvec_t: x length");
        assert_eq!(y.len(), self.ncols, "matvec_t: y length");
        y.fill(A::ZERO);
        self.matvec_t_acc(x, y);
    }

    /// `y += self^T * x` (accumulating, no allocation).
    pub fn matvec_t_acc<A: Scalar>(&self, x: &[A], y: &mut [A]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        for (j, yj) in y.iter_mut().enumerate() {
            *yj += blas::dot(self.col(j), x);
        }
    }

    /// `self * other` (see [`blas::gemm`] for the blocked kernel).
    pub fn matmul(&self, other: &MatrixS<S>) -> MatrixS<S> {
        blas::gemm(self, other)
    }

    /// `self^T * other` without forming the transpose.
    pub fn t_matmul(&self, other: &MatrixS<S>) -> MatrixS<S> {
        blas::gemm_tn(self, other)
    }

    /// `self * other^T` without forming the transpose.
    pub fn matmul_t(&self, other: &MatrixS<S>) -> MatrixS<S> {
        blas::gemm_nt(self, other)
    }

    /// Frobenius norm (overflow-safe pairwise accumulation via
    /// [`blas::nrm2`]).
    pub fn fro_norm(&self) -> S {
        blas::nrm2(self.as_slice())
    }

    /// Largest absolute entry (max norm).
    pub fn max_abs(&self) -> S {
        self.as_slice().iter().fold(S::ZERO, |m, &v| m.max(v.abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: S) {
        for v in self.data.make_owned() {
            *v *= s;
        }
    }

    /// `self += alpha * other` (entrywise).
    pub fn axpy(&mut self, alpha: S, other: &MatrixS<S>) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.make_owned().iter_mut().zip(other.as_slice()) {
            *a += alpha * *b;
        }
    }

    /// `self - other` (allocating).
    pub fn sub(&self, other: &MatrixS<S>) -> MatrixS<S> {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a - b)
            .collect();
        MatrixS {
            nrows: self.nrows,
            ncols: self.ncols,
            data: Buf::Owned(data),
        }
    }

    /// Heap bytes held by this matrix (for memory accounting). A mapped
    /// (slab-backed) matrix reports 0 here — its pages are the file
    /// mapping's, counted separately by [`MatrixS::mapped_bytes`].
    pub fn bytes(&self) -> usize {
        match &self.data {
            Buf::Owned(v) => v.capacity() * std::mem::size_of::<S>(),
            Buf::Mapped(_) => 0,
        }
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for MatrixS<S> {
    type Output = S;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data.as_slice()[i + j * self.nrows]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for MatrixS<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.nrows && j < self.ncols);
        let nrows = self.nrows;
        &mut self.data.make_owned()[i + j * nrows]
    }
}

impl<S: Scalar> std::fmt::Display for MatrixS<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{} x {}]", self.nrows, self.ncols)?;
        let rmax = self.nrows.min(8);
        let cmax = self.ncols.min(8);
        for i in 0..rmax {
            for j in 0..cmax {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            if cmax < self.ncols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rmax < self.nrows {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_fn_layout_is_column_major() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        // column 0 = [00, 10], column 1 = [01, 11]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        let t = m.transpose();
        assert_eq!(t[(3, 4)], m[(4, 3)]);
    }

    #[test]
    fn select_rows_cols() {
        let m = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let s = m.select(&[1, 3], &[0, 2]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 10.0);
        assert_eq!(s[(1, 1)], 32.0);
        let r = m.select_rows(&[2]);
        assert_eq!(r.row(0), vec![20.0, 21.0, 22.0, 23.0]);
        let c = m.select_cols(&[3, 3]);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 3.0);
    }

    #[test]
    fn block_and_set_block() {
        let m = Matrix::from_fn(4, 5, |i, j| (i + 10 * j) as f64);
        let b = m.block(1..3, 2..4);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::zeros(4, 5);
        z.set_block(1, 2, &b);
        assert_eq!(z[(1, 2)], m[(1, 2)]);
        assert_eq!(z[(2, 3)], m[(2, 3)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn stack() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(1, 2, |_, j| (100 + j) as f64);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v[(2, 1)], 101.0);
        let c = Matrix::from_fn(2, 1, |i, _| (i + 50) as f64);
        let h = Matrix::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(1, 2)], 51.0);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matvec_acc_accumulates() {
        let m = Matrix::identity(2);
        let mut y = vec![1.0, 2.0];
        m.matvec_acc(&[3.0, 4.0], &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn f32_matrix_basics() {
        let m = MatrixS::<f32>::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m[(1, 2)], 5.0_f32);
        let y = m.matvec(&[1.0_f32, 0.0, 1.0]);
        assert_eq!(y, vec![2.0_f32, 8.0, 14.0]);
        // Conversion round-trip through f64 is exact for f32 values.
        let wide: MatrixS<f64> = m.convert();
        let back: MatrixS<f32> = wide.convert();
        assert_eq!(back, m);
    }

    #[test]
    fn mixed_apply_promotes_storage_to_f64() {
        // f32 storage, f64 vectors: entries promoted exactly, accumulation
        // in f64 matches the all-f64 computation bit for bit.
        let mf32 = MatrixS::<f32>::from_fn(4, 4, |i, j| ((i + 2 * j) as f32) * 0.25);
        let mf64: MatrixS<f64> = mf32.convert();
        let x: Vec<f64> = (0..4).map(|i| (i as f64) * 0.5 - 1.0).collect();
        assert_eq!(mf32.matvec(&x), mf64.matvec(&x));
        assert_eq!(mf32.matvec_t(&x), mf64.matvec_t(&x));
    }

    #[test]
    fn swaps() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let orig = m.clone();
        m.swap_cols(0, 2);
        assert_eq!(m.col(0), orig.col(2));
        m.swap_cols(0, 2);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), orig.row(1));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn axpy_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let mut b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        b.axpy(2.0, &a);
        assert_eq!(b, Matrix::from_rows(&[vec![12.0, 24.0]]));
        let d = b.sub(&a);
        assert_eq!(d, Matrix::from_rows(&[vec![11.0, 22.0]]));
        let mut s = d;
        s.scale(0.5);
        assert_eq!(s, Matrix::from_rows(&[vec![5.5, 11.0]]));
    }

    #[test]
    fn empty_matrices() {
        let e = Matrix::zeros(0, 5);
        assert!(e.is_empty());
        assert_eq!(e.matvec(&[0.0; 5]), Vec::<f64>::new());
        let e2 = Matrix::zeros(3, 0);
        assert_eq!(e2.matvec::<f64>(&[]), vec![0.0; 3]);
    }

    #[test]
    fn slab_backed_matrix_applies_bitwise_and_promotes_on_write() {
        use crate::slab::SlabMem;
        let owned = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j) as f64).sin());
        let mut bytes = Vec::new();
        for &v in owned.as_slice() {
            v.write_le(&mut bytes);
        }
        let mem = SlabMem::from_bytes(&bytes);
        let mapped = Matrix::from_slab(5, 4, mem.slice(0, 20).unwrap());
        assert!(mapped.is_mapped());
        assert_eq!(mapped.bytes(), 0);
        assert_eq!(mapped.mapped_bytes(), 160);
        assert_eq!(mapped, owned);
        let x = [0.3, -1.1, 0.0, 2.5];
        // Same arithmetic, same code path: outputs are bit-identical.
        let (yo, ym): (Vec<f64>, Vec<f64>) = (owned.matvec(&x), mapped.matvec(&x));
        assert!(yo.iter().zip(&ym).all(|(a, b)| a.to_bits() == b.to_bits()));
        let xt = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(owned.matvec_t(&xt), mapped.matvec_t(&xt));
        // First mutation promotes to an owned copy; the slab is untouched.
        let mut cow = mapped.clone();
        cow.scale(2.0);
        assert!(!cow.is_mapped());
        assert_eq!(cow.mapped_bytes(), 0);
        assert!(cow.bytes() > 0);
        assert_eq!(cow[(0, 0)], 2.0 * owned[(0, 0)]);
        assert_eq!(mapped, owned, "source view must be unaffected");
    }
}
