//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! Used by the solvers crate (preconditioners) and in tests that need SPD
//! references. `A = L L^T` with `L` lower triangular.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Cholesky factorization `A = L L^T`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the SPD matrix `a` (consumed). Fails with
    /// [`LinalgError::Singular`] at the first non-positive pivot.
    pub fn new(mut a: Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "Cholesky needs square, got {m} x {n}"
            )));
        }
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= a[(j, k)] * a[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::Singular(j));
            }
            let ljj = d.sqrt();
            a[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= a[(i, k)] * a[(j, k)];
                }
                a[(i, j)] = s / ljj;
            }
            // Zero the strictly-upper part for a clean L.
            for i in 0..j {
                a[(i, j)] = 0.0;
            }
        }
        Ok(Cholesky { l: a })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` in place via two triangular solves.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(b.len(), n);
        // L y = b
        for i in 0..n {
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * bj;
            }
            b[i] = s / self.l[(i, i)];
        }
        // L^T x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for (j, &bj) in b.iter().enumerate().skip(i + 1) {
                s -= self.l[(j, i)] * bj;
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solves `A x = b` (allocating).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = b.t_matmul(&b);
        for i in 0..n {
            a[(i, i)] += n as f64 * 0.1;
        }
        a
    }

    #[test]
    fn reconstructs() {
        let a = spd(10, 3);
        let ch = Cholesky::new(a.clone()).unwrap();
        let rec = ch.l().matmul_t(ch.l());
        assert!(rec.sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn solve_works() {
        let a = spd(12, 4);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let b = a.matvec(&x_true);
        let x = Cholesky::new(a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(Cholesky::new(a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::new(Matrix::zeros(2, 3)).is_err());
    }
}
