//! Small vector utilities shared across the workspace.

use crate::blas;

/// Euclidean norm of a vector.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    blas::nrm2(x)
}

/// Relative Euclidean distance `||x - y|| / ||y||` (0 when both are zero).
pub fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut diff2 = 0.0;
    let mut ref2 = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        diff2 += d * d;
        ref2 += b * b;
    }
    if ref2 == 0.0 {
        if diff2 == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (diff2 / ref2).sqrt()
    }
}

/// `x - y` elementwise (allocating).
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Gathers `x[idx[k]]` into a new vector.
pub fn gather(x: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| x[i]).collect()
}

/// Scatter-adds `vals[k]` into `x[idx[k]]`.
pub fn scatter_add(x: &mut [f64], idx: &[usize], vals: &[f64]) {
    assert_eq!(idx.len(), vals.len());
    for (&i, &v) in idx.iter().zip(vals) {
        x[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_basic() {
        assert_eq!(rel_err(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_err(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(&[0.0], &[0.0]), 0.0);
        assert_eq!(rel_err(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn gather_scatter() {
        let x = [10.0, 20.0, 30.0];
        assert_eq!(gather(&x, &[2, 0]), vec![30.0, 10.0]);
        let mut y = [0.0; 3];
        scatter_add(&mut y, &[1, 1, 2], &[5.0, 5.0, 7.0]);
        assert_eq!(y, [0.0, 10.0, 7.0]);
    }

    #[test]
    fn sub_works() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }
}
