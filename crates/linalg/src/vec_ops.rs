//! Small vector utilities shared across the workspace.
//!
//! [`rel_err`] accepts vectors of *different* scalar types and does all its
//! accumulation pairwise in `f64`: it is the yardstick the precision tests
//! measure `f32` results against the `f64` reference with, so the metric
//! itself must not contribute error at the `1e-5` scales being asserted.

use crate::blas;
use crate::scalar::Scalar;

/// Euclidean norm of a vector.
#[inline]
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    blas::nrm2(x)
}

/// Pairwise-accumulated `(sum (x_i - y_i)^2, sum y_i^2)` in `f64`.
fn diff_ref_sq_sums<X: Scalar, Y: Scalar>(x: &[X], y: &[Y]) -> (f64, f64) {
    if x.len() <= 32 {
        let mut diff2 = 0.0;
        let mut ref2 = 0.0;
        for (a, b) in x.iter().zip(y) {
            let bw = b.to_f64();
            let d = a.to_f64() - bw;
            diff2 += d * d;
            ref2 += bw * bw;
        }
        (diff2, ref2)
    } else {
        let mid = x.len() / 2;
        let (d0, r0) = diff_ref_sq_sums(&x[..mid], &y[..mid]);
        let (d1, r1) = diff_ref_sq_sums(&x[mid..], &y[mid..]);
        (d0 + d1, r0 + r1)
    }
}

/// Relative Euclidean distance `||x - y|| / ||y||` (0 when both are zero),
/// computed in `f64` with pairwise summation regardless of the input scalar
/// types.
pub fn rel_err<X: Scalar, Y: Scalar>(x: &[X], y: &[Y]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let (diff2, ref2) = diff_ref_sq_sums(x, y);
    if ref2 == 0.0 {
        if diff2 == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (diff2 / ref2).sqrt()
    }
}

/// `x - y` elementwise (allocating).
pub fn sub<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a - b).collect()
}

/// Gathers `x[idx[k]]` into a new vector.
pub fn gather<S: Scalar>(x: &[S], idx: &[usize]) -> Vec<S> {
    idx.iter().map(|&i| x[i]).collect()
}

/// Scatter-adds `vals[k]` into `x[idx[k]]`.
pub fn scatter_add<S: Scalar>(x: &mut [S], idx: &[usize], vals: &[S]) {
    assert_eq!(idx.len(), vals.len());
    for (&i, &v) in idx.iter().zip(vals) {
        x[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_basic() {
        assert_eq!(rel_err(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_err(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(&[0.0], &[0.0]), 0.0);
        assert_eq!(rel_err(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn rel_err_mixed_types_is_exact_widening() {
        // f32 inputs are widened exactly; comparing a vector against its own
        // widening must give exactly zero even for awkward values.
        let xs: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let wide: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        assert_eq!(rel_err(&xs, &wide), 0.0);
        assert_eq!(rel_err(&wide, &xs), 0.0);
    }

    #[test]
    fn rel_err_metric_noise_below_assertion_scale() {
        // A long near-identical pair: the true rel err is ~1e-8, four
        // decades below the 1e-5 the precision suites assert. Pairwise f64
        // accumulation must recover it to high relative accuracy.
        let n = 1 << 15;
        let y: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-9).collect();
        let x: Vec<f64> = y.iter().map(|&v| v * (1.0 + 1e-8)).collect();
        let measured = rel_err(&x, &y);
        assert!(
            (measured - 1e-8).abs() / 1e-8 < 1e-3,
            "measured {measured:.3e}"
        );
    }

    #[test]
    fn gather_scatter() {
        let x = [10.0, 20.0, 30.0];
        assert_eq!(gather(&x, &[2, 0]), vec![30.0, 10.0]);
        let mut y = [0.0; 3];
        scatter_add(&mut y, &[1, 1, 2], &[5.0, 5.0, 7.0]);
        assert_eq!(y, [0.0, 10.0, 7.0]);
    }

    #[test]
    fn sub_works() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }
}
