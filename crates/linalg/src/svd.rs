//! One-sided Jacobi SVD.
//!
//! Used for validation (true numerical ranks and spectral-norm error
//! estimates in tests) and for pseudo-inverses of the small Nyström core
//! matrices. One-sided Jacobi is simple, robust, and accurate for the small
//! dense blocks that appear in hierarchical-matrix construction; it is not
//! intended for large matrices.

use crate::blas;
use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Thin singular value decomposition `A = U diag(s) V^T`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m x k`, `k = min(m, n)`).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (`n x k`).
    pub v: Matrix,
}

/// Maximum number of one-sided Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` via one-sided Jacobi rotations.
///
/// For `m < n` the factorization is computed on the transpose and swapped
/// back, so the routine accepts any shape.
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m < n {
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        });
    }
    if n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(0, 0),
        });
    }
    // Work on a copy; columns of `w` converge to u_i * s_i.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    let mut converged = false;
    let mut sweeps = 0;
    let mut off = f64::INFINITY;
    while !converged && sweeps < MAX_SWEEPS {
        converged = true;
        off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                let (wp_dot, wq_dot, pq_dot) = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    (blas::dot(cp, cp), blas::dot(cq, cq), blas::dot(cp, cq))
                };
                let denom = (wp_dot * wq_dot).sqrt();
                if denom == 0.0 {
                    continue;
                }
                off = off.max(pq_dot.abs() / denom);
                if pq_dot.abs() <= eps * denom * 8.0 {
                    continue;
                }
                converged = false;
                // Jacobi rotation annihilating the (p, q) Gram entry.
                let tau = (wq_dot - wp_dot) / (2.0 * pq_dot);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut w, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        sweeps += 1;
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            iterations: sweeps,
            residual: off,
        });
    }
    // Extract singular values and normalize columns of w.
    let k = n;
    let mut s: Vec<f64> = (0..k).map(|j| blas::nrm2(w.col(j))).collect();
    let mut u = Matrix::zeros(m, k);
    for j in 0..k {
        let sj = s[j];
        if sj > 0.0 {
            let inv = 1.0 / sj;
            for i in 0..m {
                u[(i, j)] = w[(i, j)] * inv;
            }
        }
    }
    // Sort non-increasing.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| s[b].total_cmp(&s[a]));
    let u = u.select_cols(&order);
    let v = v.select_cols(&order);
    s = order.iter().map(|&i| s[i]).collect();
    Ok(Svd { u, s, v })
}

/// Applies the rotation `[c s; -s c]` to columns p, q of `m`.
fn rotate_cols(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let (cp, cq) = m.cols_mut_pair(p, q);
    for (a, b) in cp.iter_mut().zip(cq.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = c * x - s * y;
        *b = s * x + c * y;
    }
}

/// Numerical rank: number of singular values above `tol * s_max`.
pub fn numerical_rank(a: &Matrix, tol: f64) -> Result<usize> {
    let d = svd(a)?;
    let smax = d.s.first().copied().unwrap_or(0.0);
    Ok(d.s.iter().filter(|&&x| x > tol * smax).count())
}

/// Spectral norm (largest singular value).
pub fn spectral_norm(a: &Matrix) -> Result<f64> {
    Ok(svd(a)?.s.first().copied().unwrap_or(0.0))
}

/// Moore–Penrose pseudo-inverse with relative truncation `tol`.
pub fn pinv(a: &Matrix, tol: f64) -> Result<Matrix> {
    let d = svd(a)?;
    let smax = d.s.first().copied().unwrap_or(0.0);
    let cut = tol * smax;
    let k = d.s.iter().filter(|&&x| x > cut).count();
    // pinv = V_k diag(1/s) U_k^T
    let mut vs = d.v.block(0..d.v.nrows(), 0..k);
    for j in 0..k {
        let inv = 1.0 / d.s[j];
        blas::scal(inv, vs.col_mut(j));
    }
    let uk = d.u.block(0..d.u.nrows(), 0..k);
    Ok(vs.matmul_t(&uk))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = rand_matrix(10, 6, 1);
        let d = svd(&a).unwrap();
        let mut us = d.u.clone();
        for j in 0..d.s.len() {
            blas::scal(d.s[j], us.col_mut(j));
        }
        let rec = us.matmul_t(&d.v);
        assert!(rec.sub(&a).max_abs() < 1e-11);
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = rand_matrix(5, 9, 2);
        let d = svd(&a).unwrap();
        let mut us = d.u.clone();
        for j in 0..d.s.len() {
            blas::scal(d.s[j], us.col_mut(j));
        }
        let rec = us.matmul_t(&d.v);
        assert!(rec.sub(&a).max_abs() < 1e-11);
    }

    #[test]
    fn singular_values_sorted_and_orthonormal_factors() {
        let a = rand_matrix(12, 8, 3);
        let d = svd(&a).unwrap();
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let utu = d.u.t_matmul(&d.u);
        assert!(utu.sub(&Matrix::identity(8)).max_abs() < 1e-11);
        let vtv = d.v.t_matmul(&d.v);
        assert!(vtv.sub(&Matrix::identity(8)).max_abs() < 1e-11);
    }

    #[test]
    fn diagonal_matrix_svd() {
        let mut a = Matrix::zeros(4, 4);
        for (i, s) in [3.0, 7.0, 1.0, 5.0].iter().enumerate() {
            a[(i, i)] = *s;
        }
        let d = svd(&a).unwrap();
        let expect = [7.0, 5.0, 3.0, 1.0];
        for (got, want) in d.s.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn numerical_rank_detects() {
        let u = rand_matrix(15, 3, 4);
        let v = rand_matrix(10, 3, 5);
        let a = u.matmul_t(&v);
        assert_eq!(numerical_rank(&a, 1e-10).unwrap(), 3);
    }

    #[test]
    fn pinv_satisfies_moore_penrose() {
        let a = rand_matrix(8, 5, 6);
        let p = pinv(&a, 1e-13).unwrap();
        // A * A+ * A = A
        let apa = a.matmul(&p).matmul(&a);
        assert!(apa.sub(&a).max_abs() < 1e-10);
        // A+ * A * A+ = A+
        let pap = p.matmul(&a).matmul(&p);
        assert!(pap.sub(&p).max_abs() < 1e-10);
    }

    #[test]
    fn pinv_of_rank_deficient() {
        let u = rand_matrix(8, 2, 7);
        let v = rand_matrix(6, 2, 8);
        let a = u.matmul_t(&v);
        let p = pinv(&a, 1e-10).unwrap();
        let apa = a.matmul(&p).matmul(&a);
        assert!(apa.sub(&a).max_abs() < 1e-9);
    }

    #[test]
    fn empty_svd() {
        let a = Matrix::zeros(4, 0);
        let d = svd(&a).unwrap();
        assert!(d.s.is_empty());
    }

    #[test]
    fn spectral_norm_of_identity() {
        assert!((spectral_norm(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }
}
