//! Randomized sketching primitives: a counter-based RNG, Gaussian and SRHT
//! test-matrix generators, and the truncated randomized range finder / SVD
//! built on them.
//!
//! These are the substrate of the **sketched H² construction** (`h2-sketch`):
//! instead of compressing a node's farfield block `A` directly, the builder
//! forms the much thinner sketch `Y = A Ω` against a random *test matrix*
//! `Ω` and factorizes `Y` — the classic randomized-range argument
//! (Halko–Martinsson–Tropp) says the row space of `Y` captures the dominant
//! row space of `A` with overwhelming probability once `Ω` has a few more
//! columns than the target rank.
//!
//! ## Determinism
//!
//! Everything here is driven by [`CounterRng`], a **counter-based** splitmix64
//! generator: the `i`-th output is a pure function `mix(key, i)` of the
//! stream key and the counter, with no hidden global state. Streams derived
//! via [`CounterRng::stream`] are statistically independent, so parallel
//! workers (one stream per tree node × adaptive round) draw reproducible
//! randomness in any execution order — the property that makes sketched
//! builds bit-reproducible run-to-run under rayon.
//!
//! All routines are `f64`: like the rest of the construction pipeline, the
//! factorization runs in double precision and results are rounded to the
//! storage scalar once, at assembly.

use crate::matrix::Matrix;
use crate::qr::Qr;

/// Golden-ratio increment of splitmix64.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a bijective avalanche mix of one 64-bit word.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based splitmix64 RNG.
///
/// Output `i` of the stream with key `k` is `mix64(k + (i+1)·GAMMA)` — the
/// splitmix64 sequence, evaluated positionally rather than by mutating
/// hidden state. Two generators with the same `(seed, stream)` always
/// produce the same sequence; distinct streams are decorrelated by passing
/// the stream id through the same finalizer.
#[derive(Clone, Debug)]
pub struct CounterRng {
    key: u64,
    ctr: u64,
}

impl CounterRng {
    /// Root generator for `seed` (stream 0).
    pub fn new(seed: u64) -> Self {
        Self::stream(seed, 0)
    }

    /// An independent stream derived from `(seed, stream)`. Use one stream
    /// per parallel work item (e.g. per tree node per adaptive round) so
    /// scheduling order cannot change what anyone draws.
    pub fn stream(seed: u64, stream: u64) -> Self {
        CounterRng {
            key: mix64(seed ^ mix64(stream.wrapping_mul(GAMMA) ^ 0xA5A5_A5A5_5A5A_5A5A)),
            ctr: 0,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.ctr = self.ctr.wrapping_add(1);
        mix64(self.key.wrapping_add(self.ctr.wrapping_mul(GAMMA)))
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (`n > 0`). Uses the high-bits multiply trick;
    /// the modulo bias is below 2^-53 for any practical `n`.
    #[inline]
    pub fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() >> 11) as u128 * n as u128) >> 53) as usize
    }

    /// Standard normal via Box–Muller (two uniforms per call, no cached
    /// second value — keeps draws positional and therefore reproducible
    /// regardless of how callers interleave them).
    #[inline]
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0): shift the first uniform away from zero.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = (u1 + 0.5 / (1u64 << 53) as f64).min(1.0);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A random sign in `{-1.0, +1.0}`.
    #[inline]
    pub fn sign(&mut self) -> f64 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Which test-matrix ensemble a sketch draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SketchKind {
    /// I.i.d. `N(0, 1/k)` entries — the reference ensemble with the
    /// sharpest theory and fully dense mixing.
    #[default]
    Gaussian,
    /// Subsampled randomized Hadamard transform: `Ω = √(p/k) · D H_p S / √p`
    /// rows truncated to `m` — structured mixing with ±1 arithmetic,
    /// the ensemble batched/accelerator backends prefer.
    Srht,
}

impl SketchKind {
    /// Harness CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SketchKind::Gaussian => "gaussian",
            SketchKind::Srht => "srht",
        }
    }

    /// Parses the harness CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gaussian" | "gauss" => Some(SketchKind::Gaussian),
            "srht" | "hadamard" => Some(SketchKind::Srht),
            _ => None,
        }
    }
}

/// An `m x k` Gaussian test matrix with `N(0, 1/k)` entries (so `‖Ωx‖ ≈ ‖x‖`
/// in expectation), drawn from `rng` in column-major order.
pub fn gaussian_test_matrix(m: usize, k: usize, rng: &mut CounterRng) -> Matrix {
    let scale = if k > 0 { 1.0 / (k as f64).sqrt() } else { 1.0 };
    let mut out = Matrix::zeros(m, k);
    for j in 0..k {
        for v in out.col_mut(j) {
            *v = rng.normal() * scale;
        }
    }
    out
}

/// An `m x k` SRHT test matrix: random signs, a Walsh–Hadamard mix over the
/// next power of two `p ≥ m`, and `k` uniformly chosen Hadamard columns,
/// scaled so `E[ΩᵀΩ] = I`. Entries are evaluated directly as
/// `±(-1)^popcount(i & c_j)` — with sketch widths this small, the closed
/// form beats a fast transform and keeps the draw purely positional.
pub fn srht_test_matrix(m: usize, k: usize, rng: &mut CounterRng) -> Matrix {
    let p = m.max(1).next_power_of_two();
    let scale = if k > 0 {
        (p as f64 / k as f64).sqrt() / (p as f64).sqrt()
    } else {
        1.0
    };
    let signs: Vec<f64> = (0..m).map(|_| rng.sign()).collect();
    let cols: Vec<usize> = (0..k).map(|_| rng.pick(p)).collect();
    Matrix::from_fn(m, k, |i, j| {
        let h = if (i & cols[j]).count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        signs[i] * h * scale
    })
}

/// Draws a test matrix of the requested ensemble.
pub fn test_matrix(kind: SketchKind, m: usize, k: usize, rng: &mut CounterRng) -> Matrix {
    match kind {
        SketchKind::Gaussian => gaussian_test_matrix(m, k, rng),
        SketchKind::Srht => srht_test_matrix(m, k, rng),
    }
}

/// Randomized range finder: an orthonormal `m x min(rank + oversample, ...)`
/// basis `Q` with `A ≈ Q Qᵀ A`, from one sketch `Y = A Ω`.
pub fn randomized_range(
    a: &Matrix,
    rank: usize,
    oversample: usize,
    kind: SketchKind,
    rng: &mut CounterRng,
) -> Matrix {
    let (m, n) = a.shape();
    let k = (rank + oversample).min(n).min(m);
    if k == 0 {
        return Matrix::zeros(m, 0);
    }
    let omega = test_matrix(kind, n, k, rng);
    let y = a.matmul(&omega);
    Qr::new(y).q()
}

/// A truncated SVD `A ≈ U diag(s) Vᵀ` from a randomized sketch.
#[derive(Clone, Debug)]
pub struct RandSvd {
    /// Left singular vectors (`m x r`).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (`n x r`).
    pub v: Matrix,
}

/// Truncated randomized SVD: sketch `Y = A Ω` with `rank + oversample`
/// columns, orthonormalize, and diagonalize the small projected matrix
/// `Qᵀ A` with the deterministic Jacobi SVD. Keeps at most `rank` triples.
///
/// This is the Hatrix exemplar's `AY` + truncated-SVD step as a reusable
/// primitive; the H² builder itself uses the cheaper row-ID variant (it
/// needs skeleton *indices*, not orthogonal factors), but validation and
/// the ablation bench compare against this.
pub fn randomized_svd(
    a: &Matrix,
    rank: usize,
    oversample: usize,
    kind: SketchKind,
    rng: &mut CounterRng,
) -> crate::Result<RandSvd> {
    let q = randomized_range(a, rank, oversample, kind, rng);
    if q.ncols() == 0 {
        return Ok(RandSvd {
            u: Matrix::zeros(a.nrows(), 0),
            s: Vec::new(),
            v: Matrix::zeros(a.ncols(), 0),
        });
    }
    let b = q.t_matmul(a); // k x n
    let svd = crate::svd::svd(&b)?;
    let r = rank.min(svd.s.len());
    let u_small = svd.u.block(0..b.nrows(), 0..r);
    Ok(RandSvd {
        u: q.matmul(&u_small),
        s: svd.s[..r].to_vec(),
        v: svd.v.block(0..a.ncols(), 0..r),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
        let mut rng = CounterRng::new(seed);
        let u = Matrix::from_fn(m, r, |_, _| rng.normal());
        let v = Matrix::from_fn(r, n, |_, _| rng.normal());
        u.matmul(&v)
    }

    #[test]
    fn counter_rng_is_positional_and_streamed() {
        let mut a = CounterRng::stream(42, 7);
        let mut b = CounterRng::stream(42, 7);
        let seq: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(seq, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        let mut c = CounterRng::stream(42, 8);
        assert_ne!(seq[0], c.next_u64());
        let mut d = CounterRng::stream(43, 7);
        assert_ne!(seq[0], d.next_u64());
    }

    #[test]
    fn uniform_and_pick_in_range() {
        let mut rng = CounterRng::new(1);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let p = rng.pick(13);
            assert!(p < 13);
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = CounterRng::new(5);
        let n = 20_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn pick_covers_all_buckets() {
        let mut rng = CounterRng::new(9);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[rng.pick(8)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 700, "bucket {i} starved: {h}");
        }
    }

    #[test]
    fn gaussian_test_matrix_deterministic_and_scaled() {
        let mut a = CounterRng::stream(3, 1);
        let mut b = CounterRng::stream(3, 1);
        let ma = gaussian_test_matrix(40, 10, &mut a);
        let mb = gaussian_test_matrix(40, 10, &mut b);
        assert_eq!(ma.as_slice(), mb.as_slice());
        // Column norms concentrate near sqrt(m/k)·(1/sqrt(k))·sqrt(k) …
        // simpler: E‖col‖² = m/k.
        let expect = (40.0f64 / 10.0).sqrt();
        for j in 0..10 {
            let nrm = crate::blas::nrm2(ma.col(j));
            assert!((nrm - expect).abs() < expect, "col {j} norm {nrm}");
        }
    }

    #[test]
    fn srht_entries_are_signed_and_scaled() {
        let mut rng = CounterRng::new(11);
        let m = 24;
        let k = 6;
        let omega = srht_test_matrix(m, k, &mut rng);
        let p = m.next_power_of_two() as f64;
        let mag = (p / k as f64).sqrt() / p.sqrt();
        for j in 0..k {
            for i in 0..m {
                assert!((omega[(i, j)].abs() - mag).abs() < 1e-14);
            }
        }
        // The ensemble approximately preserves squared norms on average.
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut rng = CounterRng::new(1);
        let trials = 200;
        let mut acc = 0.0;
        for t in 0..trials {
            let mut r = CounterRng::stream(rng.next_u64(), t as u64);
            let o = srht_test_matrix(m, k, &mut r);
            let y = o.matvec_t(&x);
            acc += y.iter().map(|v| v * v).sum::<f64>();
        }
        let x2: f64 = x.iter().map(|v| v * v).sum();
        let ratio = acc / trials as f64 / x2;
        assert!((ratio - 1.0).abs() < 0.25, "norm ratio {ratio}");
    }

    #[test]
    fn randomized_range_captures_low_rank() {
        let a = low_rank(60, 45, 5, 2);
        for kind in [SketchKind::Gaussian, SketchKind::Srht] {
            let mut rng = CounterRng::new(7);
            let q = randomized_range(&a, 5, 5, kind, &mut rng);
            assert_eq!(q.nrows(), 60);
            // ‖A - QQᵀA‖ should vanish for exact rank-5 input.
            let proj = q.matmul(&q.t_matmul(&a));
            let err = proj.sub(&a).fro_norm() / a.fro_norm();
            assert!(err < 1e-10, "{kind:?}: range residual {err}");
        }
    }

    #[test]
    fn randomized_svd_matches_low_rank() {
        let a = low_rank(50, 40, 4, 13);
        let mut rng = CounterRng::new(21);
        let r = randomized_svd(&a, 4, 6, SketchKind::Gaussian, &mut rng).unwrap();
        assert_eq!(r.u.shape(), (50, 4));
        assert_eq!(r.v.shape(), (40, 4));
        // Reconstruct U diag(s) Vᵀ.
        let mut us = r.u.clone();
        for j in 0..4 {
            for v in us.col_mut(j) {
                *v *= r.s[j];
            }
        }
        let rec = us.matmul_t(&r.v);
        let err = rec.sub(&a).fro_norm() / a.fro_norm();
        assert!(err < 1e-9, "rsvd residual {err}");
        for w in r.s.windows(2) {
            assert!(w[0] >= w[1], "singular values must be sorted");
        }
    }

    #[test]
    fn randomized_svd_truncates_noisy_spectrum() {
        // Low-rank + tiny noise: the truncated factorization keeps `rank`
        // triples and its error is at the noise floor.
        let mut rng = CounterRng::new(33);
        let mut a = low_rank(40, 40, 3, 17);
        for j in 0..40 {
            for v in a.col_mut(j) {
                *v += 1e-9 * rng.normal();
            }
        }
        let r = randomized_svd(&a, 3, 8, SketchKind::Srht, &mut rng).unwrap();
        assert_eq!(r.s.len(), 3);
        let mut us = r.u.clone();
        for j in 0..3 {
            for v in us.col_mut(j) {
                *v *= r.s[j];
            }
        }
        let err = us.matmul_t(&r.v).sub(&a).fro_norm() / a.fro_norm();
        assert!(err < 1e-6, "noisy residual {err}");
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Matrix::zeros(6, 0);
        let mut rng = CounterRng::new(1);
        let q = randomized_range(&a, 3, 2, SketchKind::Gaussian, &mut rng);
        assert_eq!(q.shape(), (6, 0));
        let r = randomized_svd(&a, 3, 2, SketchKind::Gaussian, &mut rng).unwrap();
        assert!(r.s.is_empty());
        assert_eq!(
            test_matrix(SketchKind::Srht, 0, 0, &mut rng).shape(),
            (0, 0)
        );
    }

    #[test]
    fn sketch_kind_parse_round_trip() {
        for k in [SketchKind::Gaussian, SketchKind::Srht] {
            assert_eq!(SketchKind::parse(k.name()), Some(k));
        }
        assert_eq!(SketchKind::parse("hadamard"), Some(SketchKind::Srht));
        assert_eq!(SketchKind::parse("x"), None);
    }
}
