//! Householder QR and column-pivoted (rank-revealing) QR.
//!
//! [`Qr`] is the plain factorization used for least squares and
//! orthonormalization. [`PivotedQr`] is the workhorse of the interpolative
//! decomposition in [`crate::id`]: Businger–Golub column pivoting with
//! downdated column norms (and periodic recomputation for numerical safety),
//! truncated either at a fixed rank or at a relative tolerance on the
//! R-diagonal — exactly the rank-revealing behaviour the data-driven H²
//! construction relies on to pick skeleton points.
//!
//! Both factorizations are generic over [`Scalar`]. Tolerance-truncated
//! pivoted QR clamps the requested tolerance to [`Scalar::SAFE_REL_TOL`]
//! (a few machine epsilons): below that the downdated column norms are
//! roundoff, and the pivot loop would chase noise instead of rank.

use crate::blas;
use crate::matrix::MatrixS;
use crate::scalar::Scalar;

/// Compact Householder QR of an `m x n` matrix (`m >= n` not required).
///
/// Stores the factored matrix in LAPACK-style compact form: R in the upper
/// triangle, Householder vectors below the diagonal, plus the scalar `tau`
/// coefficients.
#[derive(Clone, Debug)]
pub struct Qr<S: Scalar = f64> {
    /// Compact factorization (R above diagonal, reflectors below).
    fact: MatrixS<S>,
    /// Householder coefficients, one per reflector.
    tau: Vec<S>,
}

/// Applies the Householder reflector stored in `v` (implicit leading 1) to a
/// column slice: `x -= tau * v (v . x)` where `v = [1, fact[k+1..m, k]]`.
#[inline]
fn apply_reflector<S: Scalar>(v_tail: &[S], tau: S, x: &mut [S]) {
    // x[0] pairs with the implicit 1 at the head of v.
    let w = x[0] + blas::dot(v_tail, &x[1..]);
    let t = tau * w;
    x[0] -= t;
    blas::axpy(-t, v_tail, &mut x[1..]);
}

impl<S: Scalar> Qr<S> {
    /// Factorizes `a` (consumed).
    pub fn new(mut a: MatrixS<S>) -> Self {
        let (m, n) = a.shape();
        let k = m.min(n);
        let mut tau = vec![S::ZERO; k];
        for (j, tau_j) in tau.iter_mut().enumerate() {
            // Build the reflector from column j, rows j..m.
            let (t, beta) = {
                let col = &mut a.col_mut(j)[j..];
                make_reflector(col)
            };
            *tau_j = t;
            // Apply to trailing columns. The tail is copied once per step to
            // sidestep the simultaneous-borrow of two columns.
            if t != S::ZERO {
                let v_tail: Vec<S> = a.col(j)[j + 1..].to_vec();
                for jj in (j + 1)..n {
                    let col = &mut a.col_mut(jj)[j..];
                    apply_reflector(&v_tail, t, col);
                }
            }
            a.col_mut(j)[j] = beta;
        }
        Qr { fact: a, tau }
    }

    /// Number of rows of the original matrix.
    pub fn nrows(&self) -> usize {
        self.fact.nrows()
    }

    /// Number of columns of the original matrix.
    pub fn ncols(&self) -> usize {
        self.fact.ncols()
    }

    /// The upper-triangular factor `R` (`min(m,n) x n`).
    pub fn r(&self) -> MatrixS<S> {
        let (m, n) = self.fact.shape();
        let k = m.min(n);
        MatrixS::from_fn(
            k,
            n,
            |i, j| if i <= j { self.fact[(i, j)] } else { S::ZERO },
        )
    }

    /// The thin orthonormal factor `Q` (`m x min(m,n)`).
    pub fn q(&self) -> MatrixS<S> {
        let (m, n) = self.fact.shape();
        let k = m.min(n);
        let mut q = MatrixS::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = S::ONE;
        }
        // Apply reflectors in reverse to the identity.
        for j in (0..k).rev() {
            let t = self.tau[j];
            if t == S::ZERO {
                continue;
            }
            let v_tail: Vec<S> = self.fact.col(j)[j + 1..].to_vec();
            for jj in 0..k {
                let col = &mut q.col_mut(jj)[j..];
                apply_reflector(&v_tail, t, col);
            }
        }
        q
    }

    /// Applies `Q^T` to a vector in place (length m); the leading
    /// `min(m,n)` entries afterwards are the projection coefficients.
    pub fn qt_mul_vec(&self, x: &mut [S]) {
        let (m, n) = self.fact.shape();
        assert_eq!(x.len(), m, "qt_mul_vec: length");
        let k = m.min(n);
        for j in 0..k {
            let t = self.tau[j];
            if t == S::ZERO {
                continue;
            }
            let v_tail = &self.fact.col(j)[j + 1..];
            apply_reflector(v_tail, t, &mut x[j..]);
        }
    }

    /// Least-squares solve `min ||a x - b||` for full-column-rank `a`
    /// (`m >= n`). Returns the coefficient vector of length n.
    pub fn solve_ls(&self, b: &[S]) -> crate::Result<Vec<S>> {
        let (m, n) = self.fact.shape();
        if m < n {
            return Err(crate::LinalgError::DimensionMismatch(
                "solve_ls needs m >= n".into(),
            ));
        }
        let mut work = b.to_vec();
        self.qt_mul_vec(&mut work);
        let mut x = work[..n].to_vec();
        // Back substitution with R.
        for i in (0..n).rev() {
            let rii = self.fact[(i, i)];
            if rii == S::ZERO {
                return Err(crate::LinalgError::Singular(i));
            }
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.fact[(i, j)] * xj;
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

/// Builds a Householder reflector for `col` in place.
///
/// On return `col[0]` holds the reflector's first component pre-beta, the
/// tail holds `v[1..]` (with the implicit `v[0] = 1`), and the function
/// returns `(tau, beta)` where `beta` is the resulting R diagonal entry.
fn make_reflector<S: Scalar>(col: &mut [S]) -> (S, S) {
    let alpha = col[0];
    let xnorm = blas::nrm2(&col[1..]);
    if xnorm == S::ZERO {
        return (S::ZERO, alpha);
    }
    let beta = -alpha.signum() * (alpha * alpha + xnorm * xnorm).sqrt();
    let tau = (beta - alpha) / beta;
    let scale = S::ONE / (alpha - beta);
    blas::scal(scale, &mut col[1..]);
    (tau, beta)
}

/// Column-pivoted, tolerance-truncated QR: `A P = Q R`.
///
/// The factorization stops as soon as the largest remaining column norm
/// drops below `tol * ||largest initial column||` (or at `max_rank`). The
/// selected pivot order is exactly the skeleton-selection rule of the
/// interpolative decomposition.
#[derive(Clone, Debug)]
pub struct PivotedQr<S: Scalar = f64> {
    /// Compact factorization, columns permuted (R upper, reflectors lower).
    fact: MatrixS<S>,
    /// Householder coefficients for the first `rank` reflectors.
    tau: Vec<S>,
    /// `perm[k]` = original column index now in position k.
    perm: Vec<usize>,
    /// Numerical rank at the requested truncation.
    rank: usize,
}

/// Truncation policy for [`PivotedQr::new`].
#[derive(Clone, Copy, Debug)]
pub struct Truncation {
    /// Relative tolerance on the R diagonal (vs. the first pivot). `0.0`
    /// disables tolerance-based stopping.
    pub rel_tol: f64,
    /// Hard cap on the rank. `usize::MAX` disables it.
    pub max_rank: usize,
}

impl Truncation {
    /// Truncate at relative tolerance only.
    pub fn tol(rel_tol: f64) -> Self {
        Truncation {
            rel_tol,
            max_rank: usize::MAX,
        }
    }

    /// Truncate at fixed rank only.
    pub fn rank(max_rank: usize) -> Self {
        Truncation {
            rel_tol: 0.0,
            max_rank,
        }
    }
}

impl<S: Scalar> PivotedQr<S> {
    /// Factorizes `a` (consumed) with Businger–Golub column pivoting.
    pub fn new(mut a: MatrixS<S>, trunc: Truncation) -> Self {
        let (m, n) = a.shape();
        let kmax = m.min(n).min(trunc.max_rank);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut tau = Vec::with_capacity(kmax);

        // A tolerance below what this precision resolves would have the
        // pivot loop chasing roundoff in the downdated norms: clamp it.
        let rel_tol = if trunc.rel_tol > 0.0 {
            trunc.rel_tol.max(S::SAFE_REL_TOL)
        } else {
            0.0
        };

        // Squared column norms, downdated as the factorization proceeds.
        let mut norms2: Vec<S> = (0..n).map(|j| blas::dot(a.col(j), a.col(j))).collect();
        let mut exact2 = norms2.clone();
        let norm0 = norms2.iter().cloned().fold(S::ZERO, S::max).sqrt();
        let thresh2 = if norm0 == S::ZERO {
            S::from_f64(f64::INFINITY) // all-zero matrix: rank 0
        } else {
            let t = S::from_f64(rel_tol) * norm0;
            t * t
        };

        let mut rank = 0;
        for k in 0..kmax {
            // Pick pivot column.
            let (piv, &pnorm2) = norms2[k..]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, v)| (i + k, v))
                .unwrap();
            if rel_tol > 0.0 && pnorm2 <= thresh2 {
                break;
            }
            if pnorm2 <= S::ZERO {
                break;
            }
            if piv != k {
                a.swap_cols(k, piv);
                norms2.swap(k, piv);
                exact2.swap(k, piv);
                perm.swap(k, piv);
            }
            // Householder step.
            let (t, beta) = {
                let col = &mut a.col_mut(k)[k..];
                make_reflector(col)
            };
            tau.push(t);
            if t != S::ZERO {
                let v_tail: Vec<S> = a.col(k)[k + 1..].to_vec();
                for jj in (k + 1)..n {
                    let col = &mut a.col_mut(jj)[k..];
                    apply_reflector(&v_tail, t, col);
                }
            }
            a.col_mut(k)[k] = beta;
            rank = k + 1;
            // Downdate column norms; recompute when cancellation bites
            // (standard LAPACK-style safeguard).
            for jj in (k + 1)..n {
                let rkj = a[(k, jj)];
                let updated = norms2[jj] - rkj * rkj;
                if updated > S::from_f64(0.01) * exact2[jj] {
                    norms2[jj] = updated.max(S::ZERO);
                } else {
                    let tail = &a.col(jj)[k + 1..];
                    let fresh = blas::dot(tail, tail);
                    norms2[jj] = fresh;
                    exact2[jj] = fresh;
                }
            }
        }
        PivotedQr {
            fact: a,
            tau,
            perm,
            rank,
        }
    }

    /// Numerical rank at the requested truncation.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `perm[k]` = original index of the column pivoted to position k. The
    /// first [`Self::rank`] entries are the skeleton columns.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// R factor truncated to `rank` rows (rank x n, columns in pivot order).
    pub fn r(&self) -> MatrixS<S> {
        let n = self.fact.ncols();
        MatrixS::from_fn(self.rank, n, |i, j| {
            if i <= j {
                self.fact[(i, j)]
            } else {
                S::ZERO
            }
        })
    }

    /// Thin Q (m x rank).
    pub fn q(&self) -> MatrixS<S> {
        let m = self.fact.nrows();
        let k = self.rank;
        let mut q = MatrixS::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = S::ONE;
        }
        for j in (0..k).rev() {
            let t = self.tau[j];
            if t == S::ZERO {
                continue;
            }
            let v_tail: Vec<S> = self.fact.col(j)[j + 1..].to_vec();
            for jj in 0..k {
                let col = &mut q.col_mut(jj)[j..];
                apply_reflector(&v_tail, t, col);
            }
        }
        q
    }

    /// Solves `R11 * X = R12` where `R11` is the leading `rank x rank`
    /// triangle and `R12` the trailing `rank x (n - rank)` block. This is the
    /// interpolation-coefficient solve of the ID. Returns `X`
    /// (`rank x (n - rank)`).
    pub fn interp_coeffs(&self) -> MatrixS<S> {
        let n = self.fact.ncols();
        let k = self.rank;
        let mut x = self.fact_block(k, n);
        // Back substitution on each column: R11 X = R12.
        for jj in 0..x.ncols() {
            for i in (0..k).rev() {
                let mut s = x[(i, jj)];
                for l in (i + 1)..k {
                    s -= self.fact[(i, l)] * x[(l, jj)];
                }
                let rii = self.fact[(i, i)];
                // rii cannot be zero for i < rank by construction, but guard
                // against denormal pathologies.
                x[(i, jj)] = if rii != S::ZERO { s / rii } else { S::ZERO };
            }
        }
        x
    }

    /// The trailing block `fact[0..k, k..n]` (i.e. R12).
    fn fact_block(&self, k: usize, n: usize) -> MatrixS<S> {
        MatrixS::from_fn(k, n - k, |i, j| self.fact[(i, k + j)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        // Simple deterministic LCG so this module doesn't need rand.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = rand_matrix(8, 5, 42);
        let qr = Qr::new(a.clone());
        let rec = qr.q().matmul(&qr.r());
        assert!(rec.sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn qr_q_is_orthonormal() {
        let a = rand_matrix(10, 6, 7);
        let q = Qr::new(a).q();
        let qtq = q.t_matmul(&q);
        assert!(qtq.sub(&Matrix::identity(6)).max_abs() < 1e-12);
    }

    #[test]
    fn qr_wide_matrix() {
        let a = rand_matrix(4, 9, 3);
        let qr = Qr::new(a.clone());
        let rec = qr.q().matmul(&qr.r());
        assert!(rec.sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares() {
        // Overdetermined consistent system.
        let a = rand_matrix(12, 4, 11);
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = a.matvec(&x_true);
        let x = Qr::new(a).solve_ls(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn qr_f32_reconstructs() {
        let a32: MatrixS<f32> = rand_matrix(8, 5, 42).convert();
        let qr = Qr::new(a32.clone());
        let rec = qr.q().matmul(&qr.r());
        assert!(rec.sub(&a32).max_abs() < 1e-5);
        let qtq = qr.q().t_matmul(&qr.q());
        assert!(qtq.sub(&MatrixS::<f32>::identity(5)).max_abs() < 1e-5);
    }

    #[test]
    fn pivoted_qr_full_rank_reconstructs() {
        let a = rand_matrix(9, 6, 5);
        let pqr = PivotedQr::new(a.clone(), Truncation::tol(1e-14));
        assert_eq!(pqr.rank(), 6);
        let qr_prod = pqr.q().matmul(&pqr.r());
        // q*r equals A with columns permuted.
        let ap = a.select_cols(pqr.perm());
        assert!(qr_prod.sub(&ap).max_abs() < 1e-11);
    }

    #[test]
    fn pivoted_qr_detects_low_rank() {
        // Rank-3 matrix: outer product structure.
        let u = rand_matrix(20, 3, 1);
        let v = rand_matrix(15, 3, 2);
        let a = u.matmul_t(&v);
        let pqr = PivotedQr::new(a, Truncation::tol(1e-10));
        assert_eq!(pqr.rank(), 3);
    }

    #[test]
    fn pivoted_qr_f32_clamps_tolerance_to_precision() {
        // Rank-3 matrix in f32 with a tolerance far below f32 resolution:
        // without the SAFE_REL_TOL clamp the factorization would keep
        // pivoting on roundoff and report (near-)full rank.
        let u = rand_matrix(20, 3, 1);
        let v = rand_matrix(15, 3, 2);
        let a32: MatrixS<f32> = u.matmul_t(&v).convert();
        let pqr = PivotedQr::new(a32, Truncation::tol(1e-14));
        assert_eq!(pqr.rank(), 3);
    }

    #[test]
    fn pivoted_qr_rank_cap() {
        let a = rand_matrix(10, 10, 9);
        let pqr = PivotedQr::new(a, Truncation::rank(4));
        assert_eq!(pqr.rank(), 4);
    }

    #[test]
    fn pivoted_qr_zero_matrix() {
        let a = Matrix::zeros(5, 4);
        let pqr = PivotedQr::new(a, Truncation::tol(1e-10));
        assert_eq!(pqr.rank(), 0);
    }

    #[test]
    fn pivoted_qr_interp_coeffs_solve() {
        let a = rand_matrix(8, 8, 13);
        let pqr = PivotedQr::new(a, Truncation::rank(5));
        let x = pqr.interp_coeffs();
        assert_eq!(x.shape(), (5, 3));
        // Verify R11 * X = R12.
        let r = pqr.r();
        let r11 = r.block(0..5, 0..5);
        let r12 = r.block(0..5, 5..8);
        let res = r11.matmul(&x).sub(&r12);
        assert!(res.max_abs() < 1e-10);
    }

    #[test]
    fn pivot_order_decreasing_diagonal() {
        let a = rand_matrix(30, 20, 21);
        let pqr = PivotedQr::new(a, Truncation::tol(1e-13));
        let r = pqr.r();
        for i in 1..pqr.rank() {
            assert!(
                r[(i, i)].abs() <= r[(i - 1, i - 1)].abs() * (1.0 + 1e-10),
                "diagonal should be non-increasing"
            );
        }
    }
}
