//! BLAS-style building blocks: dot products, axpy, and blocked gemm variants.
//!
//! The gemm kernels use a simple cache-blocked rank-1-update-free formulation
//! (jik loop order over column panels) that LLVM auto-vectorizes well, and
//! switch to rayon column-panel parallelism above a flop threshold.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Flop count above which gemm parallelizes over column panels.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// `sum_i x_i * y_i`. Unrolled by 4 to expose ILP; slices must match length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm with overflow-safe scaling for large entries.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    let mx = x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if mx == 0.0 || !mx.is_finite() {
        return mx;
    }
    let inv = 1.0 / mx;
    let s: f64 = x.iter().map(|&v| (v * inv) * (v * inv)).sum();
    mx * s.sqrt()
}

/// Scales a vector in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Computes one column panel of `C = A * B`: `c_col = A * b_col`.
#[inline]
fn gemm_col(a: &Matrix, b_col: &[f64], c_col: &mut [f64]) {
    c_col.fill(0.0);
    for (k, &bk) in b_col.iter().enumerate() {
        if bk != 0.0 {
            axpy(bk, a.col(k), c_col);
        }
    }
}

/// Dense `A * B` (blocked over columns of B; rayon for large products).
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "gemm: inner dims {} vs {}",
        a.ncols(),
        b.nrows()
    );
    let (m, n) = (a.nrows(), b.ncols());
    let mut c = Matrix::zeros(m, n);
    let flops = 2 * m * n * a.ncols();
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter().enumerate().for_each(|(j, c_col)| {
            gemm_col(a, b.col(j), c_col);
        });
    } else {
        for j in 0..n {
            gemm_col(a, b.col(j), c.col_mut(j));
        }
    }
    c
}

/// `A^T * B` without materializing `A^T`. Column j of the result is
/// `A^T b_j`, i.e. entry (i, j) is `dot(a_col_i, b_col_j)`.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.nrows(),
        b.nrows(),
        "gemm_tn: inner dims {} vs {}",
        a.nrows(),
        b.nrows()
    );
    let (m, n) = (a.ncols(), b.ncols());
    let mut c = Matrix::zeros(m, n);
    let flops = 2 * m * n * a.nrows();
    let fill = |j: usize, c_col: &mut [f64]| {
        let bj = b.col(j);
        for (i, ci) in c_col.iter_mut().enumerate() {
            *ci = dot(a.col(i), bj);
        }
    };
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter()
            .enumerate()
            .for_each(|(j, col)| fill(j, col));
    } else {
        for j in 0..n {
            fill(j, c.col_mut(j));
        }
    }
    c
}

/// `A * B^T` without materializing `B^T`.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.ncols(),
        b.ncols(),
        "gemm_nt: inner dims {} vs {}",
        a.ncols(),
        b.ncols()
    );
    let (m, n) = (a.nrows(), b.nrows());
    let mut c = Matrix::zeros(m, n);
    // C = sum_k a_col_k * (b_col_k)^T: rank-1 updates, organised per C column.
    // Column j of C accumulates a_col_k * B[j, k] over k.
    let fill = |j: usize, c_col: &mut [f64]| {
        c_col.fill(0.0);
        for k in 0..a.ncols() {
            let bjk = b[(j, k)];
            if bjk != 0.0 {
                axpy(bjk, a.col(k), c_col);
            }
        }
    };
    let flops = 2 * m * n * a.ncols();
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter()
            .enumerate()
            .for_each(|(j, col)| fill(j, col));
    } else {
        for j in 0..n {
            fill(j, c.col_mut(j));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.nrows(), b.ncols(), |i, j| {
            (0..a.ncols()).map(|k| a[(i, k)] * b[(k, j)]).sum()
        })
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i * i) as f64 * 0.1).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9);
    }

    #[test]
    fn nrm2_robust_to_scaling() {
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // Entries whose squares would overflow.
        let big = 1e200;
        let v = [big, big];
        assert!((nrm2(&v) - big * 2.0_f64.sqrt()).abs() / nrm2(&v) < 1e-14);
    }

    #[test]
    fn gemm_matches_naive() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let b = Matrix::from_fn(5, 9, |i, j| (i as f64 - j as f64) * 0.3);
        let c = gemm(&a, &b);
        let n = naive_gemm(&a, &b);
        assert!(c.sub(&n).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_tn_matches_transpose() {
        let a = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.05);
        let b = Matrix::from_fn(6, 3, |i, j| (i + 2 * j) as f64 * 0.02);
        let c = gemm_tn(&a, &b);
        let expect = naive_gemm(&a.transpose(), &b);
        assert!(c.sub(&expect).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_nt_matches_transpose() {
        let a = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.05);
        let b = Matrix::from_fn(5, 4, |i, j| (i + 2 * j) as f64 * 0.02);
        let c = gemm_nt(&a, &b);
        let expect = naive_gemm(&a, &b.transpose());
        assert!(c.sub(&expect).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_large_parallel_path() {
        // Big enough to trip the parallel threshold.
        let a = Matrix::from_fn(200, 150, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.1);
        let b = Matrix::from_fn(150, 180, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1);
        let c = gemm(&a, &b);
        let n = naive_gemm(&a, &b);
        assert!(c.sub(&n).max_abs() < 1e-9);
    }

    #[test]
    fn gemm_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let i4 = Matrix::identity(4);
        assert_eq!(gemm(&a, &i4), a);
        assert_eq!(gemm(&i4, &a), a);
    }

    #[test]
    fn gemm_empty_dims() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
