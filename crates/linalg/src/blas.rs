//! BLAS-style building blocks: dot products, axpy, and blocked gemm variants.
//!
//! The gemm kernels use a simple cache-blocked rank-1-update-free formulation
//! (jik loop order over column panels) that LLVM auto-vectorizes well, and
//! switch to rayon column-panel parallelism above a flop threshold.
//!
//! `dot` and `axpy` take *two* scalar parameters — `S` for the stored data
//! and `A` for the vector being accumulated into. Stored values are promoted
//! `S -> A` before the multiply, so `S = f32, A = f64` gives the
//! mixed-precision accumulation the H² sweeps use, while `S = A`
//! instantiations compile to exactly the old same-type code (promotion is
//! the identity).

use crate::matrix::MatrixS;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Flop count above which gemm parallelizes over column panels.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// `sum_i x_i * y_i`, accumulated in `A` (entries of `x` promoted `S -> A`).
/// Unrolled by 4 to expose ILP; slices must match length.
#[inline]
pub fn dot<S: Scalar, A: Scalar>(x: &[S], y: &[A]) -> A {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (A::ZERO, A::ZERO, A::ZERO, A::ZERO);
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i].promote::<A>() * y[i];
        s1 += x[i + 1].promote::<A>() * y[i + 1];
        s2 += x[i + 2].promote::<A>() * y[i + 2];
        s3 += x[i + 3].promote::<A>() * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        s += x[i].promote::<A>() * y[i];
    }
    s
}

/// `y += alpha * x`, accumulated in `A` (entries of `x` promoted `S -> A`).
#[inline]
pub fn axpy<S: Scalar, A: Scalar>(alpha: A, x: &[S], y: &mut [A]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi.promote::<A>();
    }
}

/// Pairwise sum of `(x_i * inv)^2`: O(eps * log n) error growth instead of
/// the O(eps * n) of a running sum, so the norm itself doesn't pollute
/// f32-vs-f64 accuracy comparisons.
fn pairwise_sq_sum<S: Scalar>(x: &[S], inv: S) -> S {
    if x.len() <= 32 {
        let mut s = S::ZERO;
        for &v in x {
            let t = v * inv;
            s += t * t;
        }
        s
    } else {
        let mid = x.len() / 2;
        pairwise_sq_sum(&x[..mid], inv) + pairwise_sq_sum(&x[mid..], inv)
    }
}

/// Euclidean norm with overflow-safe scaling for large entries and pairwise
/// accumulation of the squared sum.
#[inline]
pub fn nrm2<S: Scalar>(x: &[S]) -> S {
    let mx = x.iter().fold(S::ZERO, |m, &v| m.max(v.abs()));
    if mx == S::ZERO || !mx.is_finite() {
        return mx;
    }
    let inv = S::ONE / mx;
    let s = pairwise_sq_sum(x, inv);
    mx * s.sqrt()
}

/// Scales a vector in place.
#[inline]
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    for v in x {
        *v *= alpha;
    }
}

/// Computes one column panel of `C = A * B`: `c_col = A * b_col`.
#[inline]
fn gemm_col<S: Scalar>(a: &MatrixS<S>, b_col: &[S], c_col: &mut [S]) {
    c_col.fill(S::ZERO);
    for (k, &bk) in b_col.iter().enumerate() {
        if bk != S::ZERO {
            axpy(bk, a.col(k), c_col);
        }
    }
}

/// Dense `A * B` (blocked over columns of B; rayon for large products).
pub fn gemm<S: Scalar>(a: &MatrixS<S>, b: &MatrixS<S>) -> MatrixS<S> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "gemm: inner dims {} vs {}",
        a.ncols(),
        b.nrows()
    );
    let (m, n) = (a.nrows(), b.ncols());
    let mut c = MatrixS::zeros(m, n);
    let flops = 2 * m * n * a.ncols();
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [S]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter().enumerate().for_each(|(j, c_col)| {
            gemm_col(a, b.col(j), c_col);
        });
    } else {
        for j in 0..n {
            gemm_col(a, b.col(j), c.col_mut(j));
        }
    }
    c
}

/// `A^T * B` without materializing `A^T`. Column j of the result is
/// `A^T b_j`, i.e. entry (i, j) is `dot(a_col_i, b_col_j)`.
pub fn gemm_tn<S: Scalar>(a: &MatrixS<S>, b: &MatrixS<S>) -> MatrixS<S> {
    assert_eq!(
        a.nrows(),
        b.nrows(),
        "gemm_tn: inner dims {} vs {}",
        a.nrows(),
        b.nrows()
    );
    let (m, n) = (a.ncols(), b.ncols());
    let mut c = MatrixS::zeros(m, n);
    let flops = 2 * m * n * a.nrows();
    let fill = |j: usize, c_col: &mut [S]| {
        let bj = b.col(j);
        for (i, ci) in c_col.iter_mut().enumerate() {
            *ci = dot(a.col(i), bj);
        }
    };
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [S]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter()
            .enumerate()
            .for_each(|(j, col)| fill(j, col));
    } else {
        for j in 0..n {
            fill(j, c.col_mut(j));
        }
    }
    c
}

/// `A * B^T` without materializing `B^T`.
pub fn gemm_nt<S: Scalar>(a: &MatrixS<S>, b: &MatrixS<S>) -> MatrixS<S> {
    assert_eq!(
        a.ncols(),
        b.ncols(),
        "gemm_nt: inner dims {} vs {}",
        a.ncols(),
        b.ncols()
    );
    let (m, n) = (a.nrows(), b.nrows());
    let mut c = MatrixS::zeros(m, n);
    // C = sum_k a_col_k * (b_col_k)^T: rank-1 updates, organised per C column.
    // Column j of C accumulates a_col_k * B[j, k] over k.
    let fill = |j: usize, c_col: &mut [S]| {
        c_col.fill(S::ZERO);
        for k in 0..a.ncols() {
            let bjk = b[(j, k)];
            if bjk != S::ZERO {
                axpy(bjk, a.col(k), c_col);
            }
        }
    };
    let flops = 2 * m * n * a.ncols();
    if flops >= PAR_FLOP_THRESHOLD && n > 1 {
        let cols: Vec<&mut [S]> = c.as_mut_slice().chunks_mut(m).collect();
        cols.into_par_iter()
            .enumerate()
            .for_each(|(j, col)| fill(j, col));
    } else {
        for j in 0..n {
            fill(j, c.col_mut(j));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.nrows(), b.ncols(), |i, j| {
            (0..a.ncols()).map(|k| a[(i, k)] * b[(k, j)]).sum()
        })
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i * i) as f64 * 0.1).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9);
    }

    #[test]
    fn mixed_dot_promotes_exactly() {
        // f32 storage against an f64 vector equals widening the storage
        // first and doing everything in f64.
        let xs: Vec<f32> = (0..13).map(|i| (i as f32) * 0.3 - 1.5).collect();
        let yw: Vec<f64> = (0..13).map(|i| (i as f64) * 0.7 - 4.0).collect();
        let wide: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        assert_eq!(dot(&xs, &yw), dot(&wide, &yw));
        let mut acc = vec![0.5_f64; 13];
        let mut acc_wide = acc.clone();
        axpy(1.25_f64, &xs, &mut acc);
        axpy(1.25_f64, &wide, &mut acc_wide);
        assert_eq!(acc, acc_wide);
    }

    #[test]
    fn nrm2_robust_to_scaling() {
        assert_eq!(nrm2(&[] as &[f64]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // Entries whose squares would overflow.
        let big = 1e200;
        let v = [big, big];
        assert!((nrm2(&v) - big * 2.0_f64.sqrt()).abs() / nrm2(&v) < 1e-14);
    }

    #[test]
    fn nrm2_pairwise_beats_naive_in_f32() {
        // A long vector of identical entries: the exact norm is known, and
        // a naive running f32 sum drifts visibly while pairwise stays tight.
        let n = 1 << 16;
        let v = vec![1.0_f32; n];
        let exact = (n as f64).sqrt();
        let pairwise_err = (nrm2(&v) as f64 - exact).abs() / exact;
        let naive: f32 = v.iter().map(|&x| x * x).sum();
        let naive_err = (naive.sqrt() as f64 - exact).abs() / exact;
        assert!(pairwise_err < 1e-6, "pairwise rel err {pairwise_err:.2e}");
        assert!(
            pairwise_err <= naive_err,
            "pairwise {pairwise_err:.2e} vs naive {naive_err:.2e}"
        );
    }

    #[test]
    fn gemm_matches_naive() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let b = Matrix::from_fn(5, 9, |i, j| (i as f64 - j as f64) * 0.3);
        let c = gemm(&a, &b);
        let n = naive_gemm(&a, &b);
        assert!(c.sub(&n).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_tn_matches_transpose() {
        let a = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.05);
        let b = Matrix::from_fn(6, 3, |i, j| (i + 2 * j) as f64 * 0.02);
        let c = gemm_tn(&a, &b);
        let expect = naive_gemm(&a.transpose(), &b);
        assert!(c.sub(&expect).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_nt_matches_transpose() {
        let a = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.05);
        let b = Matrix::from_fn(5, 4, |i, j| (i + 2 * j) as f64 * 0.02);
        let c = gemm_nt(&a, &b);
        let expect = naive_gemm(&a, &b.transpose());
        assert!(c.sub(&expect).max_abs() < 1e-12);
    }

    #[test]
    fn gemm_large_parallel_path() {
        // Big enough to trip the parallel threshold.
        let a = Matrix::from_fn(200, 150, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.1);
        let b = Matrix::from_fn(150, 180, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1);
        let c = gemm(&a, &b);
        let n = naive_gemm(&a, &b);
        assert!(c.sub(&n).max_abs() < 1e-9);
    }

    #[test]
    fn gemm_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let i4 = Matrix::identity(4);
        assert_eq!(gemm(&a, &i4), a);
        assert_eq!(gemm(&i4, &a), a);
    }

    #[test]
    fn gemm_f32_matches_f64_reference() {
        let a32 = MatrixS::<f32>::from_fn(9, 6, |i, j| ((i * 5 + j) % 7) as f32 * 0.25);
        let b32 = MatrixS::<f32>::from_fn(6, 4, |i, j| ((i + 3 * j) % 5) as f32 * 0.5);
        let c32 = gemm(&a32, &b32);
        let c64 = gemm(&a32.convert::<f64>(), &b32.convert::<f64>());
        // Entries here are small dyadic rationals: both precisions are exact.
        assert_eq!(c32.convert::<f64>(), c64);
    }

    #[test]
    fn gemm_empty_dims() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
