//! The sealed [`Scalar`] trait: the two floating-point element types the
//! stack is generic over.
//!
//! Everything above this crate — kernels, H² construction and sweeps, the
//! sharded executor, the serving codec — is parameterized by `S: Scalar`
//! instead of hard-coding `f64`. The trait is deliberately sealed to `f32`
//! and `f64`: the codec assigns each implementor a stable wire tag, the
//! transport layer sizes messages from [`Scalar::BYTES`], and the numerics
//! (tolerance floors, promotion rules) are audited per type, so an
//! open-ended implementor set would be a liability, not an extension point.
//!
//! Two conversion idioms recur throughout the stack:
//!
//! - [`Scalar::promote`] — `S -> A` through `f64`. Exact for every
//!   widening or same-type pair (`f32 -> f64` is exact, `f64 -> f64` and
//!   `f32 -> f32` are the identity because `f32 -> f64 -> f32` round-trips),
//!   which is what makes the mixed-precision sweeps (`f32` storage, `f64`
//!   accumulation) and the same-type instantiations share one generic code
//!   path with no behaviour change for `f64`.
//! - [`Scalar::as_f64s`] — a zero-cost identity view of an `f64` slice,
//!   `None` for `f32`. Generic code uses it to hand `f64` instantiations to
//!   the existing (virtual-dispatch) kernel entry points so that the `f64`
//!   path stays bit-for-bit what it was before the stack went generic.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A floating-point element type of the precision-generic stack.
///
/// Implemented exactly for `f32` and `f64` (sealed). See the module docs
/// for the conversion idioms.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Clone
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + fmt::LowerExp
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// The tightest *relative* tolerance a rank-revealing factorization in
    /// this precision can meaningfully resolve (`4 x` machine epsilon, as
    /// an `f64` so it composes with user-facing tolerance knobs, which are
    /// always `f64`). Tolerance-truncated factorizations clamp to this.
    const SAFE_REL_TOL: f64;
    /// Human-readable type name (`"f32"` / `"f64"`), used in reports and
    /// error messages.
    const NAME: &'static str;
    /// Stable one-byte wire tag for the persistence codec (the byte width:
    /// `4` for `f32`, `8` for `f64`).
    const CODE: u8;
    /// Size of one element in bytes (= `std::mem::size_of::<Self>()`).
    const BYTES: usize;

    /// Conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Exact widening conversion to `f64`.
    fn to_f64(self) -> f64;

    /// Converts to another scalar type through `f64`. Exact unless
    /// narrowing `f64 -> f32`.
    #[inline]
    fn promote<A: Scalar>(self) -> A {
        A::from_f64(self.to_f64())
    }

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Sign with `signum` semantics (`±1.0`, propagating NaN).
    fn signum(self) -> Self;
    /// Elementwise maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Elementwise minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;
    /// True for neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// IEEE 754 `totalOrder` comparison.
    fn total_cmp(&self, other: &Self) -> Ordering;

    /// Identity view of a slice when `Self` is `f64`, `None` for `f32`.
    /// Lets generic code route `f64` instantiations through pre-existing
    /// `f64`-typed entry points (preserving virtual dispatch and bitwise
    /// behaviour) without unsafe casts.
    fn as_f64s(xs: &[Self]) -> Option<&[f64]>;
    /// Mutable counterpart of [`Scalar::as_f64s`].
    fn as_f64s_mut(xs: &mut [Self]) -> Option<&mut [f64]>;

    /// Appends the little-endian byte representation (codec primitive).
    fn write_le(self, out: &mut Vec<u8>);
    /// Reads one value from exactly [`Scalar::BYTES`] little-endian bytes.
    ///
    /// # Panics
    /// If `bytes.len() != Self::BYTES`.
    fn read_le(bytes: &[u8]) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const SAFE_REL_TOL: f64 = 4.0 * f64::EPSILON;
    const NAME: &'static str = "f64";
    const CODE: u8 = 8;
    const BYTES: usize = 8;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn signum(self) -> Self {
        f64::signum(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }
    #[inline]
    fn as_f64s(xs: &[Self]) -> Option<&[f64]> {
        Some(xs)
    }
    #[inline]
    fn as_f64s_mut(xs: &mut [Self]) -> Option<&mut [f64]> {
        Some(xs)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes.try_into().expect("f64 needs 8 bytes"))
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const SAFE_REL_TOL: f64 = 4.0 * f32::EPSILON as f64;
    const NAME: &'static str = "f32";
    const CODE: u8 = 4;
    const BYTES: usize = 4;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn signum(self) -> Self {
        f32::signum(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }
    #[inline]
    fn as_f64s(_: &[Self]) -> Option<&[f64]> {
        None
    }
    #[inline]
    fn as_f64s_mut(_: &mut [Self]) -> Option<&mut [f64]> {
        None
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes.try_into().expect("f32 needs 4 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consts_line_up() {
        assert_eq!(f64::BYTES, std::mem::size_of::<f64>());
        assert_eq!(f32::BYTES, std::mem::size_of::<f32>());
        assert_eq!(f64::CODE, 8);
        assert_eq!(f32::CODE, 4);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        let (narrow, wide) = (f32::SAFE_REL_TOL, f64::SAFE_REL_TOL);
        assert!(narrow > wide, "f32 tolerance floor must be looser");
    }

    #[test]
    fn promote_round_trips_widening() {
        let x: f32 = 1.234_567_9;
        let wide: f64 = x.promote();
        let back: f32 = wide.promote();
        assert_eq!(back, x, "f32 -> f64 -> f32 must be the identity");
        let y: f64 = 0.1;
        let same: f64 = y.promote();
        assert_eq!(same.to_bits(), y.to_bits());
    }

    #[test]
    fn as_f64s_identity_only_for_f64() {
        let xs = [1.0_f64, 2.0];
        assert_eq!(f64::as_f64s(&xs), Some(&xs[..]));
        let ys = [1.0_f32, 2.0];
        assert!(f32::as_f64s(&ys).is_none());
    }

    #[test]
    fn le_round_trip() {
        let mut buf = Vec::new();
        0.1_f64.write_le(&mut buf);
        (-3.5_f32).write_le(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(f64::read_le(&buf[..8]).to_bits(), 0.1_f64.to_bits());
        assert_eq!(f32::read_le(&buf[8..]), -3.5_f32);
    }
}
