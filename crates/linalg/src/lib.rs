//! # h2-linalg
//!
//! Dense linear algebra substrate for the `h2mv` workspace.
//!
//! The hierarchical-matrix code in this workspace needs a small but solid set
//! of dense kernels: matrix products, Householder QR, *column-pivoted*
//! (rank-revealing) QR, the interpolative decomposition built on top of it,
//! LU with partial pivoting, Cholesky, and a one-sided Jacobi SVD used for
//! validation and pseudo-inverses. No BLAS/LAPACK bindings are available in
//! this environment, so everything here is written from scratch in safe Rust,
//! blocked for cache friendliness and parallelised with rayon where the
//! problem sizes warrant it.
//!
//! The central type is [`MatrixS`], a dense column-major matrix generic over
//! the sealed [`Scalar`] trait (`f32` or `f64`); the [`Matrix`] alias pins
//! `f64`, which is what most call sites use. Vectors are plain `&[S]` /
//! `Vec<S>` slices. The apply routines additionally accept a separate
//! *accumulator* scalar, which is how the workspace's mixed-precision mode
//! (`f32` storage, `f64` accumulation) is built. QR/ID are generic; LU,
//! Cholesky and the Jacobi SVD remain `f64`-only (they back solvers and
//! validation, not the precision-selectable operator path).
//!
//! ## Quick example
//!
//! ```
//! use h2_linalg::Matrix;
//!
//! let a = Matrix::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 1.0 });
//! let x = vec![1.0, 1.0, 1.0];
//! let y = a.matvec(&x);
//! assert_eq!(y, vec![4.0, 4.0, 4.0]);
//! ```

pub mod blas;
pub mod chol;
pub mod id;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod scalar;
pub mod sketch;
pub mod slab;
pub mod svd;
pub mod vec_ops;

pub use id::{ColumnId, RowId};
pub use matrix::{Matrix, MatrixS};
pub use qr::{PivotedQr, Qr};
pub use scalar::Scalar;
pub use sketch::{CounterRng, SketchKind};
pub use slab::{SlabError, SlabMem, SlabSlice};

/// Errors produced by factorizations and solves in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A dimension mismatch between operands; the message names the operation.
    DimensionMismatch(String),
    /// The matrix was singular (or not positive definite for Cholesky) at the
    /// given pivot index.
    Singular(usize),
    /// An iterative routine (Jacobi SVD) failed to converge within its sweep
    /// budget.
    NoConvergence { iterations: usize, residual: f64 },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch(what) => write!(f, "dimension mismatch: {what}"),
            LinalgError::Singular(k) => write!(f, "singular pivot at index {k}"),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
