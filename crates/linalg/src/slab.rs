//! Read-only memory slabs and typed scalar views for zero-copy loading.
//!
//! The serving codec's v4 format lays matrix payloads out as 64-byte-aligned
//! little-endian slabs so an operator file can be `mmap`ed and its blocks
//! applied in place. This module supplies the two pieces that makes safe:
//!
//! - [`SlabMem`]: an immutable byte region, either a private read-only file
//!   mapping (the zero-copy path) or a heap copy (fallback for platforms
//!   without `mmap`). The region never moves or shrinks while any handle is
//!   alive, which is what lets views borrow from it across threads.
//! - [`SlabSlice`]: a checked `&[S]` view into a [`SlabMem`]. Construction
//!   verifies bounds, element alignment, and that the host is little-endian
//!   (the on-disk byte order), so reinterpreting the bytes as scalars is
//!   exactly the inverse of [`Scalar::write_le`]. On a big-endian host
//!   construction fails with a typed error and callers fall back to the
//!   owned (byte-by-byte) decode path.
//!
//! The `mmap` binding is a minimal `extern "C"` declaration against the libc
//! the Rust standard library already links on Unix — no external crate.

use crate::scalar::Scalar;
use std::fmt;
use std::sync::Arc;

/// Why a [`SlabSlice`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlabError {
    /// The requested range falls outside the slab.
    OutOfBounds {
        /// Requested start offset in bytes.
        offset: usize,
        /// Requested length in bytes.
        bytes: usize,
        /// Total slab length in bytes.
        len: usize,
    },
    /// The start address is not aligned for the element type.
    Misaligned {
        /// Requested start offset in bytes.
        offset: usize,
        /// Required alignment in bytes.
        align: usize,
    },
    /// The host is not little-endian, so in-place reinterpretation of the
    /// on-disk (little-endian) scalars would read wrong values.
    BigEndianHost,
}

impl fmt::Display for SlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlabError::OutOfBounds { offset, bytes, len } => write!(
                f,
                "slab view [{offset}, {offset}+{bytes}) out of bounds (slab is {len} bytes)"
            ),
            SlabError::Misaligned { offset, align } => {
                write!(f, "slab view at offset {offset} not {align}-byte aligned")
            }
            SlabError::BigEndianHost => {
                write!(f, "in-place slab views require a little-endian host")
            }
        }
    }
}

impl std::error::Error for SlabError {}

enum Backing {
    /// A private read-only `mmap` region (unmapped on drop).
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// A heap copy, stored as `u64` words so the base address is 8-byte
    /// aligned (enough for `f64`, the widest [`Scalar`]).
    Heap(Vec<u64>, usize),
}

/// An immutable byte region that outlives every view into it.
///
/// Obtain one with [`SlabMem::map_file`] (zero-copy where the platform
/// supports it) or [`SlabMem::from_bytes`] (heap copy), then carve typed
/// views out of it with [`SlabMem::slice`].
pub struct SlabMem {
    backing: Backing,
}

// SAFETY: the region is read-only for the lifetime of the value — the file
// mapping is PROT_READ/MAP_PRIVATE and the heap variant is never exposed
// mutably — so shared access from any thread is sound.
unsafe impl Send for SlabMem {}
unsafe impl Sync for SlabMem {}

impl SlabMem {
    /// Copies `bytes` into an 8-byte-aligned heap slab.
    pub fn from_bytes(bytes: &[u8]) -> Arc<SlabMem> {
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: `buf` holds `words * 8 >= bytes.len()` writable bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr() as *mut u8, bytes.len());
        }
        Arc::new(SlabMem {
            backing: Backing::Heap(buf, bytes.len()),
        })
    }

    /// Maps `path` read-only. On Unix this is a private `mmap` — the file's
    /// pages enter memory lazily through the page cache and are never copied
    /// onto the heap. Elsewhere it falls back to [`SlabMem::from_bytes`].
    pub fn map_file(path: &std::path::Path) -> std::io::Result<Arc<SlabMem>> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
            })?;
            if len == 0 {
                return Ok(SlabMem::from_bytes(&[]));
            }
            // SAFETY: a fresh anonymous-address, length-checked, read-only
            // private mapping of an open fd; failure is reported via
            // MAP_FAILED and turned into an io::Error.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::MAP_FAILED {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Arc::new(SlabMem {
                backing: Backing::Mapped {
                    ptr: ptr as *mut u8,
                    len,
                },
            }))
        }
        #[cfg(not(unix))]
        {
            Ok(SlabMem::from_bytes(&std::fs::read(path)?))
        }
    }

    /// The whole slab as bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            // SAFETY: the mapping is valid for `len` bytes until drop.
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(buf, len) => {
                // SAFETY: `buf` holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(_, len) => *len,
        }
    }

    /// True when the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the slab is a file mapping (pages owned by the page cache)
    /// rather than a heap copy.
    pub fn is_file_mapping(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(..) => false,
        }
    }

    /// A checked `&[S]` view of `count` scalars starting `offset` bytes in.
    ///
    /// Fails (typed, never panics) when the range escapes the slab, the
    /// start address is misaligned for `S`, or the host is big-endian.
    pub fn slice<S: Scalar>(
        self: &Arc<Self>,
        offset: usize,
        count: usize,
    ) -> Result<SlabSlice<S>, SlabError> {
        if !cfg!(target_endian = "little") {
            return Err(SlabError::BigEndianHost);
        }
        let bytes = count.checked_mul(S::BYTES).ok_or(SlabError::OutOfBounds {
            offset,
            bytes: usize::MAX,
            len: self.len(),
        })?;
        let end = offset.checked_add(bytes).ok_or(SlabError::OutOfBounds {
            offset,
            bytes,
            len: self.len(),
        })?;
        if end > self.len() {
            return Err(SlabError::OutOfBounds {
                offset,
                bytes,
                len: self.len(),
            });
        }
        let base = self.as_bytes().as_ptr() as usize + offset;
        if !base.is_multiple_of(std::mem::align_of::<S>()) {
            return Err(SlabError::Misaligned {
                offset,
                align: std::mem::align_of::<S>(),
            });
        }
        Ok(SlabSlice {
            mem: self.clone(),
            offset,
            len: count,
            _marker: std::marker::PhantomData,
        })
    }
}

impl Drop for SlabMem {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl fmt::Debug for SlabMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabMem")
            .field("len", &self.len())
            .field("file_mapping", &self.is_file_mapping())
            .finish()
    }
}

/// A shared, immutable `&[S]` view into a [`SlabMem`].
///
/// Holds an `Arc` to the slab, so the backing memory outlives the view;
/// cloning is an `Arc` bump, not a data copy.
pub struct SlabSlice<S: Scalar> {
    mem: Arc<SlabMem>,
    offset: usize,
    len: usize,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Scalar> SlabSlice<S> {
    /// The view as a scalar slice.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        // SAFETY: construction checked bounds, alignment, and endianness;
        // the backing bytes are immutable and outlive `self` via the Arc.
        unsafe {
            std::slice::from_raw_parts(
                self.mem.as_bytes().as_ptr().add(self.offset) as *const S,
                self.len,
            )
        }
    }

    /// Number of scalars in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the backing slab is a file mapping (i.e. these scalars are
    /// page-cache pages, not heap).
    pub fn is_file_mapping(&self) -> bool {
        self.mem.is_file_mapping()
    }
}

impl<S: Scalar> Clone for SlabSlice<S> {
    fn clone(&self) -> Self {
        SlabSlice {
            mem: self.mem.clone(),
            offset: self.offset,
            len: self.len,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Scalar> fmt::Debug for SlabSlice<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabSlice")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .field("file_mapping", &self.is_file_mapping())
            .finish()
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_slab_round_trips_scalars() {
        let mut bytes = Vec::new();
        for v in [1.5f64, -2.25, 0.0, 1e300] {
            v.write_le(&mut bytes);
        }
        let mem = SlabMem::from_bytes(&bytes);
        assert_eq!(mem.len(), 32);
        assert!(!mem.is_file_mapping());
        let view: SlabSlice<f64> = mem.slice(0, 4).unwrap();
        assert_eq!(view.as_slice(), &[1.5, -2.25, 0.0, 1e300]);
        let tail: SlabSlice<f64> = mem.slice(16, 2).unwrap();
        assert_eq!(tail.as_slice(), &[0.0, 1e300]);
    }

    #[test]
    fn bounds_and_alignment_are_typed_errors() {
        let mem = SlabMem::from_bytes(&[0u8; 16]);
        assert!(matches!(
            mem.slice::<f64>(0, 3),
            Err(SlabError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.slice::<f64>(4, 1),
            Err(SlabError::Misaligned { align: 8, .. })
        ));
        // f32 only needs 4-byte alignment, so the same offset is fine.
        assert!(mem.slice::<f32>(4, 3).is_ok());
        assert!(matches!(
            mem.slice::<f64>(usize::MAX, 1),
            Err(SlabError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn file_mapping_reads_in_place() {
        let mut bytes = Vec::new();
        for k in 0..64u32 {
            (k as f32 * 0.5 - 3.0).write_le(&mut bytes);
        }
        let path = std::env::temp_dir().join(format!("h2-slab-test-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mem = SlabMem::map_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(mem.len(), bytes.len());
        assert!(cfg!(unix) == mem.is_file_mapping());
        let view: SlabSlice<f32> = mem.slice(0, 64).unwrap();
        assert_eq!(view.as_slice()[6], 0.0);
        assert_eq!(view.as_slice()[63], 63.0 * 0.5 - 3.0);
        // The view keeps the mapping alive even after the Arc handle drops.
        let kept = view.clone();
        drop(mem);
        assert_eq!(kept.as_slice().len(), 64);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mem = SlabMem::from_bytes(&[]);
        assert!(mem.is_empty());
        let view: SlabSlice<f64> = mem.slice(0, 0).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.as_slice(), &[] as &[f64]);
    }
}
