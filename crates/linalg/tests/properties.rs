//! Property-based tests for the dense linear-algebra substrate.

use h2_linalg::chol::Cholesky;
use h2_linalg::id::{column_id, column_id_rel_err, row_id, row_id_rel_err};
use h2_linalg::lu::Lu;
use h2_linalg::qr::{PivotedQr, Qr, Truncation};
use h2_linalg::svd::{numerical_rank, pinv, svd};
use h2_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed (keeps shrinking stable).
fn seeded_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(m, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn low_rank(m: usize, n: usize, r: usize, seed: u64) -> Matrix {
    seeded_matrix(m, r, seed).matmul(&seeded_matrix(r, n, seed ^ 0xABC))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qr_reconstruction(m in 2usize..24, n in 1usize..24, seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let qr = Qr::new(a.clone());
        let rec = qr.q().matmul(&qr.r());
        prop_assert!(rec.sub(&a).max_abs() < 1e-10);
        // Orthonormality of thin Q.
        let q = qr.q();
        let qtq = q.t_matmul(&q);
        let k = m.min(n);
        prop_assert!(qtq.sub(&Matrix::identity(k)).max_abs() < 1e-10);
    }

    #[test]
    fn pivoted_qr_rank_detection(
        m in 6usize..30,
        n in 6usize..30,
        r in 1usize..5,
        seed in 0u64..1000,
    ) {
        let r = r.min(m.min(n));
        let a = low_rank(m, n, r, seed);
        let pqr = PivotedQr::new(a, Truncation::tol(1e-9));
        prop_assert!(pqr.rank() <= r, "rank {} exceeded true rank {}", pqr.rank(), r);
        // Rank can drop below r only with vanishing probability; allow -1.
        prop_assert!(pqr.rank() + 1 >= r);
    }

    #[test]
    fn row_and_column_ids_reconstruct(
        m in 5usize..25,
        n in 5usize..25,
        r in 1usize..4,
        seed in 0u64..1000,
    ) {
        let r = r.min(m.min(n));
        let a = low_rank(m, n, r, seed);
        let cid = column_id(&a, Truncation::tol(1e-10));
        prop_assert!(column_id_rel_err(&a, &cid) < 1e-7);
        let rid = row_id(&a, Truncation::tol(1e-10));
        prop_assert!(row_id_rel_err(&a, &rid) < 1e-7);
        // Interpolation coefficients of an ID are bounded-ish (pivoting
        // keeps them O(1) in practice; guard against wild instability).
        prop_assert!(rid.p.max_abs() < 1e3);
    }

    #[test]
    fn lu_solves_diag_dominant(n in 2usize..20, seed in 0u64..1000) {
        let mut a = seeded_matrix(n, n, seed);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = Lu::new(a).unwrap();
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_round_trip(n in 2usize..16, seed in 0u64..1000) {
        let b = seeded_matrix(n, n, seed);
        let mut a = b.t_matmul(&b);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::new(a.clone()).unwrap();
        let rec = ch.l().matmul_t(ch.l());
        prop_assert!(rec.sub(&a).max_abs() < 1e-9);
    }

    #[test]
    fn svd_singular_values_match_gram_trace(m in 2usize..15, n in 2usize..15, seed in 0u64..1000) {
        // sum s_i^2 == ||A||_F^2 (exact invariant of any SVD).
        let a = seeded_matrix(m, n, seed);
        let d = svd(&a).unwrap();
        let s2: f64 = d.s.iter().map(|s| s * s).sum();
        let f2 = a.fro_norm().powi(2);
        prop_assert!((s2 - f2).abs() < 1e-9 * (1.0 + f2));
    }

    #[test]
    fn numerical_rank_of_products(m in 4usize..16, r in 1usize..4, seed in 0u64..1000) {
        let r = r.min(m);
        let a = low_rank(m, m, r, seed);
        let nr = numerical_rank(&a, 1e-10).unwrap();
        prop_assert!(nr <= r);
    }

    #[test]
    fn pinv_is_inverse_on_row_space(m in 3usize..12, n in 3usize..12, seed in 0u64..1000) {
        let a = seeded_matrix(m, n, seed);
        let p = pinv(&a, 1e-12).unwrap();
        let apa = a.matmul(&p).matmul(&a);
        prop_assert!(apa.sub(&a).max_abs() < 1e-8);
    }

    #[test]
    fn gemm_associates_with_matvec(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        // (A B) x == A (B x)
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 1);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 - 2.0) * 0.25).collect();
        let lhs = a.matmul(&b).matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (u, v) in lhs.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-10 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn transpose_matvec_adjoint(m in 1usize..15, n in 1usize..15, seed in 0u64..1000) {
        // <A x, y> == <x, A^T y>
        let a = seeded_matrix(m, n, seed);
        let x: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..m).map(|i| ((i * 5 % 11) as f64) * 0.2).collect();
        let ax = a.matvec(&x);
        let aty = a.matvec_t(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
