//! Property-based integration tests: core invariants under randomized
//! geometry, dimension, kernel and configuration.

use h2mv::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_points(max_n: usize) -> impl Strategy<Value = (usize, usize, u64)> {
    // (n, dim, seed)
    (64..max_n, 1usize..4, 0u64..1000)
}

fn build(
    n: usize,
    dim: usize,
    seed: u64,
    mode: MemoryMode,
    tol: f64,
) -> (h2mv::points::PointSet, H2Matrix) {
    let pts = h2mv::points::gen::uniform_cube(n, dim, seed);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(tol, dim),
        mode,
        leaf_size: 32,
        eta: 0.7,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
    (pts, h2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// H² matvec approximates the dense product for random geometry.
    #[test]
    fn h2_close_to_dense((n, dim, seed) in arb_points(400)) {
        let (pts, h2) = build(n, dim, seed, MemoryMode::Normal, 1e-6);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let y = h2.matvec(&b);
        let z = h2mv::kernels::dense_matvec(&Coulomb, &pts, &b);
        let err = h2mv::linalg::vec_ops::rel_err(&y, &z);
        prop_assert!(err < 1e-4, "err {}", err);
    }

    /// Normal and on-the-fly modes produce (near-)identical results.
    #[test]
    fn modes_agree((n, dim, seed) in arb_points(400)) {
        let (_, h2a) = build(n, dim, seed, MemoryMode::Normal, 1e-5);
        let (_, h2b) = build(n, dim, seed, MemoryMode::OnTheFly, 1e-5);
        let b: Vec<f64> = (0..n).map(|i| 1.0 - (i % 3) as f64).collect();
        let ya = h2a.matvec(&b);
        let yb = h2b.matvec(&b);
        prop_assert!(h2mv::linalg::vec_ops::rel_err(&ya, &yb) < 1e-12);
    }

    /// The H² operator is linear.
    #[test]
    fn matvec_linearity((n, dim, seed) in arb_points(300), alpha in -3.0f64..3.0) {
        let (_, h2) = build(n, dim, seed, MemoryMode::OnTheFly, 1e-5);
        let a: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let bv: Vec<f64> = (0..n).map(|i| ((i * 3 % 5) as f64) * 0.5).collect();
        let combo: Vec<f64> = a.iter().zip(&bv).map(|(x, y)| alpha * x + y).collect();
        let ya = h2.matvec(&a);
        let yb = h2.matvec(&bv);
        let yc = h2.matvec(&combo);
        for i in 0..n {
            let lin = alpha * ya[i] + yb[i];
            prop_assert!((yc[i] - lin).abs() <= 1e-8 * (1.0 + lin.abs()));
        }
    }

    /// Symmetric kernels give a symmetric H² operator: x·(A y) == y·(A x).
    #[test]
    fn operator_is_symmetric((n, dim, seed) in arb_points(300)) {
        let (_, h2) = build(n, dim, seed, MemoryMode::Normal, 1e-7);
        let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) * 0.7 - 1.0).collect();
        let ay = h2.matvec(&y);
        let ax = h2.matvec(&x);
        let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        let yax: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
        // The two bilinear forms agree up to the approximation error scale.
        let scale = xay.abs().max(yax.abs()).max(1.0);
        prop_assert!((xay - yax).abs() < 1e-4 * scale, "{} vs {}", xay, yax);
    }

    /// Memory accounting: on-the-fly never exceeds normal mode.
    #[test]
    fn otf_memory_never_larger((n, dim, seed) in arb_points(350)) {
        let (_, h2n) = build(n, dim, seed, MemoryMode::Normal, 1e-5);
        let (_, h2o) = build(n, dim, seed, MemoryMode::OnTheFly, 1e-5);
        prop_assert!(h2o.memory_report().generators() <= h2n.memory_report().generators());
    }

    /// The cluster tree is a permutation and leaves tile the point set —
    /// checked through the public facade on random inputs.
    #[test]
    fn tree_is_permutation((n, dim, seed) in arb_points(500)) {
        let pts = h2mv::points::gen::uniform_cube(n, dim, seed);
        let tree = h2mv::points::ClusterTree::build(
            &pts,
            h2mv::points::TreeParams::with_leaf_size(25),
        );
        let mut seen = vec![false; n];
        for &p in tree.perm() {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        let leaf_total: usize = tree.leaves().iter().map(|&l| tree.node(l).len()).sum();
        prop_assert_eq!(leaf_total, n);
    }

    /// Anchor-net sampling returns distinct in-range indices within budget.
    #[test]
    fn anchor_net_contract(n in 50usize..300, m in 1usize..40, seed in 0u64..500) {
        use h2mv::sampling::{AnchorNet, Sampler};
        let pts = h2mv::points::gen::uniform_cube(n, 3, seed);
        let cand: Vec<usize> = (0..n).collect();
        let out = AnchorNet.sample(&pts, &cand, m, seed);
        prop_assert!(out.len() <= m.max(cand.len().min(m)));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.len(), "duplicates returned");
        prop_assert!(out.iter().all(|&i| i < n));
    }

    /// Pivoted-QR-based row ID reconstructs low-rank kernel blocks.
    #[test]
    fn row_id_on_kernel_blocks(seed in 0u64..200) {
        use h2mv::linalg::id::{row_id, row_id_rel_err};
        use h2mv::linalg::qr::Truncation;
        // A genuine farfield kernel block: two separated clusters.
        let a = h2mv::points::gen::uniform_cube(40, 3, seed);
        let mut coords = a.coords().to_vec();
        for c in coords.iter_mut().skip(2).step_by(3) {
            *c += 5.0; // shift cluster B along z
        }
        let b = h2mv::points::PointSet::new(3, coords);
        let block = h2mv::kernels::kernel_cross_matrix(&Coulomb, &a, &b);
        let id = row_id(&block, Truncation::tol(1e-8));
        prop_assert!(id.skel.len() < 40, "farfield block must be low-rank");
        prop_assert!(row_id_rel_err(&block, &id) < 1e-6);
    }
}
