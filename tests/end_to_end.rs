//! End-to-end integration tests: every construction method x memory mode x
//! kernel x distribution path through the public API, validated against the
//! exact dense product.

use h2mv::prelude::*;
use std::sync::Arc;

fn probe(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

fn true_rel_err(h2: &H2Matrix, b: &[f64], y: &[f64]) -> f64 {
    let z = h2mv::kernels::dense_matvec(h2.kernel(), h2.tree().points(), b);
    let _ = y;
    h2mv::linalg::vec_ops::rel_err(y, &z)
}

#[test]
fn all_four_paper_configs_reach_tolerance() {
    let n = 1200;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 1);
    let b = probe(n, 2);
    for (basis, tol_factor) in [
        (BasisMethod::data_driven_for_tol(1e-6, 3), 50.0),
        (BasisMethod::interpolation_for_tol(1e-6, 3), 50.0),
    ] {
        for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
            let cfg = H2Config {
                basis: basis.clone(),
                mode,
                leaf_size: 64,
                eta: 0.7,
                ..H2Config::default()
            };
            let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
            let y = h2.matvec(&b);
            let err = true_rel_err(&h2, &b, &y);
            assert!(
                err < 1e-6 * tol_factor,
                "{} / {:?}: err {err}",
                cfg.basis.name(),
                mode
            );
        }
    }
}

#[test]
fn every_paper_kernel_on_every_distribution() {
    let n = 800;
    for dist in [
        Distribution3d::Cube,
        Distribution3d::Sphere,
        Distribution3d::Dino,
    ] {
        let pts = dist.generate(n, 3);
        let b = probe(n, 4);
        for (kname, kernel) in h2mv::kernels::paper_kernels() {
            let kernel: Arc<dyn Kernel> = kernel.into();
            let cfg = H2Config {
                basis: BasisMethod::data_driven_for_tol(1e-6, 3),
                mode: MemoryMode::OnTheFly,
                leaf_size: 64,
                eta: 0.7,
                ..H2Config::default()
            };
            let h2 = H2Matrix::build(&pts, kernel, &cfg);
            let y = h2.matvec(&b);
            let err = true_rel_err(&h2, &b, &y);
            assert!(err < 1e-4, "{kname} on {}: err {err}", dist.name());
        }
    }
}

#[test]
fn normal_and_otf_agree_to_rounding() {
    let n = 1000;
    let pts = h2mv::points::gen::sphere_surface(n, 3, 5);
    let b = probe(n, 6);
    let mk = |mode| {
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-7, 3),
            mode,
            leaf_size: 50,
            eta: 0.7,
            ..H2Config::default()
        };
        H2Matrix::build(&pts, Arc::new(Exponential), &cfg)
    };
    let y1 = mk(MemoryMode::Normal).matvec(&b);
    let y2 = mk(MemoryMode::OnTheFly).matvec(&b);
    assert!(h2mv::linalg::vec_ops::rel_err(&y1, &y2) < 1e-13);
}

#[test]
fn memory_ordering_matches_paper_table1() {
    // interpolation/normal > data-driven/normal > interpolation/otf >
    // data-driven/otf (the ordering of the paper's Table I memory column).
    let n = 4000;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 7);
    let mem = |basis: BasisMethod, mode| {
        let cfg = H2Config {
            basis,
            mode,
            ..H2Config::default()
        };
        H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
            .memory_report()
            .generators()
    };
    let tol = 1e-6;
    let inorm = mem(
        BasisMethod::interpolation_for_tol(tol, 3),
        MemoryMode::Normal,
    );
    let dnorm = mem(BasisMethod::data_driven_for_tol(tol, 3), MemoryMode::Normal);
    let iotf = mem(
        BasisMethod::interpolation_for_tol(tol, 3),
        MemoryMode::OnTheFly,
    );
    let dotf = mem(
        BasisMethod::data_driven_for_tol(tol, 3),
        MemoryMode::OnTheFly,
    );
    assert!(inorm > dnorm, "interp/normal {inorm} <= dd/normal {dnorm}");
    assert!(dnorm > iotf, "dd/normal {dnorm} <= interp/otf {iotf}");
    assert!(iotf > dotf, "interp/otf {iotf} <= dd/otf {dotf}");
}

#[test]
fn proxy_surface_method_reaches_tolerance() {
    // The geometric ablation baseline must also pass end-to-end, in both
    // memory modes (its couplings are kernel submatrices like data-driven).
    let n = 1000;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 21);
    let b = probe(n, 22);
    for mode in [MemoryMode::Normal, MemoryMode::OnTheFly] {
        let cfg = H2Config {
            basis: BasisMethod::proxy_surface_for_tol(1e-6, 3),
            mode,
            leaf_size: 64,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
        let y = h2.matvec(&b);
        let err = true_rel_err(&h2, &b, &y);
        assert!(err < 1e-4, "proxy-surface {mode:?}: err {err}");
    }
}

#[test]
fn composite_kernel_end_to_end() {
    use h2mv::kernels::{Scaled, Sum};
    let n = 800;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 23);
    let kernel = Sum {
        a: Scaled {
            inner: Exponential,
            alpha: 0.5,
        },
        b: Gaussian { h: 0.3 },
    };
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-6, 3),
        mode: MemoryMode::OnTheFly,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(kernel), &cfg);
    let b = probe(n, 24);
    let y = h2.matvec(&b);
    let err = true_rel_err(&h2, &b, &y);
    assert!(err < 1e-5, "composite kernel err {err}");
}

#[test]
fn dino_distribution_is_handled() {
    // The paper includes dino precisely because non-uniform data stresses
    // adaptive partitioning.
    let n = 2000;
    let pts = h2mv::points::gen::dino(n, 9);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-7, 3),
        mode: MemoryMode::OnTheFly,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
    let b = probe(n, 10);
    let y = h2.matvec(&b);
    assert!(true_rel_err(&h2, &b, &y) < 1e-5);
}

#[test]
fn high_dimensional_data_driven_works() {
    for d in [4usize, 5, 6] {
        let n = 900;
        let pts = h2mv::points::gen::uniform_cube(n, d, 11);
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-5, d),
            mode: MemoryMode::OnTheFly,
            leaf_size: 64,
            eta: 0.7,
            ..H2Config::default()
        };
        let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
        let b = probe(n, 12);
        let y = h2.matvec(&b);
        let err = true_rel_err(&h2, &b, &y);
        assert!(err < 1e-4, "d={d}: err {err}");
    }
}

#[test]
fn h2_and_hmatrix_agree() {
    let n = 1500;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 13);
    let b = probe(n, 14);
    let h2 = {
        let cfg = H2Config {
            basis: BasisMethod::data_driven_for_tol(1e-8, 3),
            mode: MemoryMode::Normal,
            ..H2Config::default()
        };
        H2Matrix::build(&pts, Arc::new(Coulomb), &cfg)
    };
    let hm = h2mv::hmatrix::HMatrix::build(
        &pts,
        Arc::new(Coulomb),
        &h2mv::hmatrix::HConfig {
            tol: 1e-8,
            ..Default::default()
        },
    );
    let y1 = h2.matvec(&b);
    let y2 = hm.matvec(&b);
    // Both approximate the same exact product.
    assert!(h2mv::linalg::vec_ops::rel_err(&y1, &y2) < 1e-5);
}

#[test]
fn repeated_matvecs_are_deterministic() {
    let n = 600;
    let pts = h2mv::points::gen::uniform_cube(n, 2, 15);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-6, 2),
        mode: MemoryMode::OnTheFly,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(Gaussian::paper()), &cfg);
    let b = probe(n, 16);
    let y1 = h2.matvec(&b);
    let y2 = h2.matvec(&b);
    assert_eq!(y1, y2, "matvec must be bit-reproducible");
}

#[test]
fn thread_pool_results_identical_across_pool_sizes() {
    // Fig. 7's precondition: the parallel schedule must not change results.
    let n = 1000;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 17);
    let b = probe(n, 18);
    let run = |threads: usize| {
        let pool = h2mv::thread_pool(threads);
        pool.install(|| {
            let cfg = H2Config {
                basis: BasisMethod::data_driven_for_tol(1e-6, 3),
                mode: MemoryMode::OnTheFly,
                ..H2Config::default()
            };
            let h2 = H2Matrix::build(&pts, Arc::new(Coulomb), &cfg);
            h2.matvec(&b)
        })
    };
    let y1 = run(1);
    let y2 = run(4);
    let err = h2mv::linalg::vec_ops::rel_err(&y1, &y2);
    assert!(err < 1e-12, "thread count changed the answer: {err}");
}
