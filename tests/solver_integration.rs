//! Integration of the H² matvec with the iterative solvers — the paper's
//! motivating use case (amortizing one construction over many products).

use h2mv::prelude::*;
use h2mv::solvers::{DenseOperator, ShiftedOperator, StopReason};
use std::sync::Arc;

#[test]
fn cg_with_h2_operator_matches_dense_solve() {
    let n = 900;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 1);
    let kernel = Gaussian { h: 0.2 };
    let lambda = 1e-2;

    // H2-accelerated operator.
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-9, 3),
        mode: MemoryMode::Normal,
        leaf_size: 64,
        eta: 0.7,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(kernel), &cfg);
    // H2Matrix is itself an H2Operator — no closure wrapper needed.
    let shifted = ShiftedOperator::new(&h2, lambda);

    let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
    let sol = cg(
        &shifted,
        &b,
        &CgOptions {
            tol: 1e-10,
            max_iter: 2000,
        },
    )
    .unwrap();
    assert_eq!(
        sol.stop,
        StopReason::Converged,
        "residual {}",
        sol.rel_residual
    );

    // Dense reference solve of the exact system.
    let idx: Vec<usize> = (0..n).collect();
    let mut k = h2mv::kernels::kernel_matrix(&kernel, &pts, &idx, &idx);
    for i in 0..n {
        k[(i, i)] += lambda;
    }
    let x_ref = h2mv::linalg::lu::solve(&k, &b).unwrap();
    let err = h2mv::linalg::vec_ops::rel_err(&sol.x, &x_ref);
    assert!(err < 1e-5, "H2-CG vs dense solve differ: {err}");
}

#[test]
fn gmres_with_h2_operator_converges() {
    let n = 700;
    let pts = h2mv::points::gen::uniform_cube(n, 3, 2);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-8, 3),
        mode: MemoryMode::OnTheFly,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(Exponential), &cfg);
    // exp(-r) + I is well conditioned and positive definite.
    let shifted = ShiftedOperator::new(&h2, 2.0);
    let b = vec![1.0; n];
    let sol = gmres(
        &shifted,
        &b,
        &GmresOptions {
            tol: 1e-9,
            restart: 40,
            max_iter: 400,
        },
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::Converged);
    // Verify the residual against the exact operator.
    let ax = h2mv::kernels::dense_matvec(&Exponential, &pts, &sol.x);
    let res: f64 = ax
        .iter()
        .zip(&sol.x)
        .zip(&b)
        .map(|((a, x), bb)| {
            let r = a + 2.0 * x - bb;
            r * r
        })
        .sum::<f64>()
        .sqrt()
        / (n as f64).sqrt();
    assert!(res < 1e-6, "true residual {res}");
}

#[test]
fn amortization_iteration_count_is_operator_applications() {
    // The SolveResult iteration count is exactly the number of H2 matvecs —
    // the quantity the paper's normal-vs-OTF break-even reasoning uses.
    let n = 400;
    let pts = h2mv::points::gen::uniform_cube(n, 2, 3);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-7, 2),
        mode: MemoryMode::Normal,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(Gaussian { h: 0.3 }), &cfg);
    let count = std::sync::atomic::AtomicUsize::new(0);
    let op = FnOperator::new(n, |x: &[f64]| {
        count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        h2.matvec(x)
    });
    let shifted = ShiftedOperator::new(&op, 1e-1);
    let sol = cg(&shifted, &vec![1.0; n], &CgOptions::default()).unwrap();
    assert_eq!(
        sol.iterations,
        count.load(std::sync::atomic::Ordering::Relaxed)
    );
}

#[test]
fn dense_operator_and_h2_operator_same_cg_trajectory() {
    // At tight H2 tolerance the CG convergence history should track the
    // dense operator's almost exactly for the first iterations.
    let n = 300;
    let pts = h2mv::points::gen::uniform_cube(n, 2, 4);
    let kernel = Gaussian { h: 0.2 };
    let idx: Vec<usize> = (0..n).collect();
    let mut k = h2mv::kernels::kernel_matrix(&kernel, &pts, &idx, &idx);
    for i in 0..n {
        k[(i, i)] += 0.1;
    }
    let dense_op = DenseOperator::new(k);
    let cfg = H2Config {
        basis: BasisMethod::data_driven_for_tol(1e-10, 2),
        mode: MemoryMode::Normal,
        leaf_size: 40,
        eta: 0.7,
        ..H2Config::default()
    };
    let h2 = H2Matrix::build(&pts, Arc::new(kernel), &cfg);
    let h2_shift = ShiftedOperator::new(&h2, 0.1);
    let b = vec![1.0; n];
    let opts = CgOptions {
        tol: 1e-8,
        max_iter: 100,
    };
    let s1 = cg(&dense_op, &b, &opts).unwrap();
    let s2 = cg(&h2_shift, &b, &opts).unwrap();
    let k0 = s1.history.len().min(s2.history.len()).min(5);
    for i in 0..k0 {
        let (a, bb) = (s1.history[i], s2.history[i]);
        assert!(
            (a - bb).abs() < 1e-6 * (1.0 + a.abs()),
            "iteration {i}: {a} vs {bb}"
        );
    }
}
