#!/usr/bin/env python3
"""Splices results/*.txt into EXPERIMENTS.md from the template."""
import re, pathlib
root = pathlib.Path(__file__).parent
tmpl = (root / "EXPERIMENTS.md.tmpl").read_text()
def include(m):
    return (root / "results" / m.group(1)).read_text().rstrip()
out = re.sub(r"<!--INCLUDE:([\w.]+)-->", include, tmpl)
(root / "EXPERIMENTS.md").write_text(out)
print("rendered EXPERIMENTS.md")
