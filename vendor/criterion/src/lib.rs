//! Minimal stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container cannot fetch crates.io. This crate keeps the
//! `benches/*.rs` sources compiling and runnable (`cargo bench`), timing
//! each benchmark with a simple fixed-budget loop and printing a
//! median-of-samples line per benchmark. It performs no statistical
//! analysis, HTML reporting, or outlier detection.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median sample duration, filled in by `iter`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls;
    /// records the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            times.push(t.elapsed());
        }
        times.sort();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        self.report(&id.id, bencher.measured);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut bencher, input);
        self.report(&id.id, bencher.measured);
        self
    }

    fn report(&mut self, id: &str, measured: Option<Duration>) {
        match measured {
            Some(d) => println!(
                "{}/{}: median {:?} over {} samples",
                self.name, id, d, self.sample_size
            ),
            None => println!("{}/{}: no measurement recorded", self.name, id),
        }
        self.criterion.benchmarks_run += 1;
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {
        println!("ran {} benchmarks", self.benchmarks_run);
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.bench_function("sum", |bench| bench.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |bench, &k| {
            bench.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
