//! ChaCha8-based generator for the vendored `rand` stand-in.
//!
//! The build container cannot fetch crates.io, so the real `rand_chacha`
//! is unavailable. This crate implements the genuine ChaCha8 stream
//! cipher core (RFC 8439 quarter-round, 8 rounds), so the statistical
//! quality matches upstream; the exact output stream differs from
//! upstream `rand_chacha` only in word-extraction order, which no
//! workspace code depends on — only determinism in the seed does.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key (the seed), counter, nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let k = r.gen_range(0usize..10);
        assert!(k < 10);
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Crude sanity check on bit balance over 64k bits.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!((ones as f64) > 0.45 * total as f64);
        assert!((ones as f64) < 0.55 * total as f64);
    }
}
