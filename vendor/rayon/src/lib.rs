//! Sequential stand-in for the subset of the `rayon` API this workspace
//! uses.
//!
//! The build container has no network access to crates.io, so the real
//! `rayon` cannot be fetched. This crate keeps the workspace source
//! unchanged (`use rayon::prelude::*`, `par_iter`, thread pools) while
//! executing everything on the calling thread. `par_iter`/`into_par_iter`
//! return ordinary [`Iterator`]s, so every adaptor the workspace chains
//! (`map`, `collect`, `for_each`, …) resolves to the std implementation and
//! produces results in deterministic order — the same order rayon's
//! `collect` guarantees.
//!
//! Swap this path dependency back to crates.io `rayon` to restore real
//! parallelism; no workspace source changes are required.

pub mod iter {
    /// Conversion into a "parallel" iterator (sequential here). Blanket-
    /// implemented for everything that is [`IntoIterator`], which covers the
    /// ranges, vectors and slices the workspace iterates over.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// `par_iter()` — iterate a collection by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoParallelIterator,
    {
        type Item = <&'data I as IntoParallelIterator>::Item;
        type Iter = <&'data I as IntoParallelIterator>::Iter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    /// `par_iter_mut()` — iterate a collection by exclusive reference.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoParallelIterator,
    {
        type Item = <&'data mut I as IntoParallelIterator>::Item;
        type Iter = <&'data mut I as IntoParallelIterator>::Iter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_par_iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Runs both closures (sequentially) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads (always 1 in the sequential stand-in).
pub fn current_num_threads() -> usize {
    1
}

/// Error building a thread pool (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that runs closures inline on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` inside the pool (inline here).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The pool's configured thread count (informational only).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { threads: 0 }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.max(1),
        })
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_collect_preserves_order() {
        let v = vec![3usize, 1, 4, 1, 5];
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let s: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
