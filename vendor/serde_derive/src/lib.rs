//! `#[derive(Serialize)]` for the vendored `serde` stand-in.
//!
//! The real `serde_derive` needs `syn`/`quote`, which cannot be fetched
//! in this offline container, so this macro parses the struct token
//! stream by hand. It supports what the workspace actually derives on:
//! non-generic structs with named fields (attributes, doc comments and
//! visibility modifiers are skipped). Anything else produces a
//! compile-time panic with a clear message rather than silent misparse.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name>`; everything before it is attributes/visibility.
    let mut struct_pos = None;
    for (i, tt) in tokens.iter().enumerate() {
        if let TokenTree::Ident(id) = tt {
            if id.to_string() == "struct" {
                struct_pos = Some(i);
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("vendored derive(Serialize) only supports structs with named fields");
            }
        }
    }
    let struct_pos = struct_pos.expect("derive(Serialize): no `struct` keyword found");
    let name = match tokens.get(struct_pos + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected struct name, found {other:?}"),
    };

    // The body is the brace group after the name. Generic structs would put
    // a `<...>` here first; the workspace derives only on concrete structs.
    let mut body = None;
    for tt in &tokens[struct_pos + 2..] {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("vendored derive(Serialize) does not support generic structs");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored derive(Serialize) does not support tuple structs");
            }
            _ => {}
        }
    }
    let body = body.expect("derive(Serialize): struct body not found");

    let fields = parse_field_names(body);

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),"))
        .collect();
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}"
    );
    output
        .parse()
        .expect("derive(Serialize): generated code failed to parse")
}

/// Extracts field names from the token stream of a named-field struct
/// body. A field name is the identifier immediately before the first `:`
/// encountered after each top-level `,` boundary; commas nested inside
/// generic arguments (`Vec<Vec<f64>>`, `BTreeMap<K, V>`) are skipped by
/// tracking angle-bracket depth.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth: i64 = 0;
    let mut expecting_name = true;
    let mut last_ident: Option<String> = None;

    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    last_ident = None;
                }
                ':' if expecting_name => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                        expecting_name = false;
                    }
                    // A bare `:` with no preceding ident would be a parse
                    // error in the struct itself, so rustc reports it first.
                }
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                // `pub` (and the ident inside `pub(crate)`) is visibility,
                // not the field name; the name is the last ident before `:`.
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            // Attribute brackets, doc comments, `pub(crate)` parens.
            _ => {}
        }
    }
    if fields.is_empty() {
        panic!("vendored derive(Serialize): no named fields found");
    }
    fields
}
