//! Minimal stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container cannot fetch crates.io. The workspace's property
//! tests only ever use numeric range strategies (`50usize..600`,
//! `0u64..1000`, …) inside `proptest! { #![proptest_config(...)] #[test]
//! fn name(arg in strategy, ...) { ... } }` blocks with `prop_assert!` /
//! `prop_assert_eq!`, so that is exactly what this crate provides.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream (seeded per
//! test from the test's name), so failures are reproducible. There is no
//! shrinking: the failing input values are reported instead.

/// Error raised by a failing `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (the test name), so
        /// different tests draw different input sequences.
        pub fn from_label(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of test inputs. Implemented for the numeric ranges the
    /// workspace's `proptest!` blocks use as strategies.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    // Tuples of strategies are a strategy over tuples (used for composite
    // inputs like `(64..n, 1usize..4, 0u64..1000)`).
    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.pick(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` input tuples and runs the body
/// on each, reporting the failing inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let __drawn = $crate::strategy::Strategy::pick(&($strat), &mut rng);
                        inputs.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}, "),
                            __drawn
                        ));
                        let $arg = __drawn;
                    )*
                    let _ = &inputs;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name), case + 1, cfg.cases, inputs, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(n in 10usize..20, s in 0u64..5, x in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&n));
            prop_assert!(s < 5);
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert_eq!(n, n, "identity on {}", n);
        }

        #[test]
        fn trailing_comma_accepted(
            a in 0usize..4,
            b in 0usize..4,
        ) {
            prop_assert!(a < 4 && b < 4);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]

                fn always_fails(n in 0usize..10) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("n ="), "{msg}");
    }
}
