//! Minimal stand-in for the subset of `serde_json` this workspace uses:
//! `to_string` / `to_string_pretty` over `serde::Serialize` values, and
//! `from_str` into a [`Value`] with `[usize]` / `["key"]` indexing.
//!
//! The build container cannot fetch crates.io, so the real `serde_json`
//! is unavailable. Serialization renders the vendored `serde::Content`
//! tree; parsing is a standard recursive-descent JSON reader.

use serde::{Content, Serialize};

/// JSON serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document. Object fields keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(x) if x == other)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        // Matches serde_json's lossy behavior for non-finite floats.
        out.push_str("null");
    }
}

fn write_content(c: &Content, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error(format!("invalid number at byte {start}")))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize)]
    struct Row {
        label: String,
        n: usize,
        err: f64,
        tags: Vec<Vec<f64>>,
        note: Option<String>,
    }

    fn sample() -> Row {
        Row {
            label: "data-driven/otf".into(),
            n: 5000,
            err: 1.25e-6,
            tags: vec![vec![1.0, 2.5], vec![]],
            note: None,
        }
    }

    #[test]
    fn derive_round_trips_through_parser() {
        let body = to_string_pretty(&[sample()]).unwrap();
        let parsed = from_str(&body).unwrap();
        assert_eq!(parsed[0]["label"], "data-driven/otf");
        assert_eq!(parsed[0]["n"].as_u64(), Some(5000));
        assert!((parsed[0]["err"].as_f64().unwrap() - 1.25e-6).abs() < 1e-18);
        assert_eq!(parsed[0]["tags"][0][1].as_f64(), Some(2.5));
        assert!(parsed[0]["note"].is_null());
        assert!(parsed[0]["missing"].is_null());
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let body = to_string(&sample()).unwrap();
        assert!(!body.contains('\n'));
        assert!(body.starts_with('{') && body.ends_with('}'));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\none\t\"quoted\" \\ done";
        let body = to_string(&s).unwrap();
        assert_eq!(from_str(&body).unwrap(), Value::String(s.to_string()));
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str("{\"a\": ").is_err());
        assert!(from_str("[1, 2,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("{} trailing").is_err());
    }

    #[test]
    fn numbers_parse_with_exponents() {
        assert_eq!(from_str("-1.5e-3").unwrap(), Value::Number(-1.5e-3));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
    }
}
