//! Minimal stand-in for the subset of `serde` this workspace uses:
//! `#[derive(Serialize)]` on plain structs, serialized to JSON via the
//! vendored `serde_json`.
//!
//! The build container cannot fetch crates.io, so the real `serde` is
//! unavailable. Instead of the full `Serializer` visitor machinery, the
//! [`Serialize`] trait here lowers a value to a self-describing
//! [`Content`] tree that `serde_json` renders. This covers every
//! workspace use site (structs of numbers, strings, vectors, options and
//! nested structs); it does not support deserialization derives.

/// Self-describing serialized form of a value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Struct / map fields in declaration order.
    Map(Vec<(String, Content)>),
}

/// A value that can be lowered to [`Content`].
pub trait Serialize {
    fn to_content(&self) -> Content;
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_content()))
                .collect(),
        )
    }
}

/// `#[derive(Serialize)]` — lowers a named-field struct to
/// [`Content::Map`] in field order.
#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3usize.to_content(), Content::U64(3));
        assert_eq!((-2i32).to_content(), Content::I64(-2));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(Option::<u32>::None.to_content(), Content::Null);
    }

    #[test]
    fn nested_vectors_lower_to_nested_seqs() {
        let v: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0, 3.0]];
        assert_eq!(
            v.to_content(),
            Content::Seq(vec![
                Content::Seq(vec![Content::F64(1.0)]),
                Content::Seq(vec![Content::F64(2.0), Content::F64(3.0)]),
            ])
        );
    }
}
