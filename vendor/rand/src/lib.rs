//! Minimal stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng`] and
//! `distributions::{Distribution, Uniform, Standard}`.
//!
//! The build container cannot fetch crates.io, so the real `rand` is
//! unavailable. Generators here are deterministic in their seed (the only
//! property workspace code relies on) but do **not** reproduce the exact
//! bit streams of upstream `rand`.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators. Only [`SeedableRng::seed_from_u64`] is exercised by
/// the workspace; `from_seed` is the required primitive.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same approach
    /// upstream `rand` takes).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use crate::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: `[0, 1)` for floats, the full
    /// range for integers, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform distribution over a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let u: f64 = Standard.sample(rng);
            self.lo + u * (self.hi - self.lo)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    let span = (self.hi as i128 - self.lo as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(usize, u64, u32, i64, i32);
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Fair coin with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Lcg(9);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let neg = r.gen_range(-5i64..-2);
            assert!((-5..-2).contains(&neg));
        }
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut r = Lcg(11);
        let d = Uniform::new(0.25f64, 0.75);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Lcg(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
